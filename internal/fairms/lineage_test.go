package fairms

import (
	"math/rand"
	"path/filepath"
	"testing"

	"fairdms/internal/nn"
	"fairdms/internal/stats"
)

func lineageState(t *testing.T) *nn.StateDict {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	return nn.Sequential(nn.NewLinear(rng, 3, 2)).State()
}

// TestLineageAccessors checks the typed readers over the reserved meta keys.
func TestLineageAccessors(t *testing.T) {
	z := NewZoo()
	pdf := stats.PDF{0.5, 0.5}
	if err := z.Add("child", lineageState(t), pdf, map[string]string{
		MetaParent:      "foundation-1",
		MetaEpochs:      "17",
		MetaConvergedAt: "9",
		MetaWarmStart:   "true",
	}); err != nil {
		t.Fatal(err)
	}
	if err := z.Add("orphan", lineageState(t), pdf, map[string]string{
		MetaEpochs:    "not-a-number",
		MetaWarmStart: "false",
	}); err != nil {
		t.Fatal(err)
	}

	child, err := z.Get("child")
	if err != nil {
		t.Fatal(err)
	}
	if got := child.Parent(); got != "foundation-1" {
		t.Fatalf("Parent() = %q, want foundation-1", got)
	}
	if n, ok := child.Epochs(); !ok || n != 17 {
		t.Fatalf("Epochs() = %d, %v", n, ok)
	}
	if e, ok := child.ConvergedAt(); !ok || e != 9 {
		t.Fatalf("ConvergedAt() = %d, %v", e, ok)
	}
	if !child.WarmStarted() {
		t.Fatal("WarmStarted() = false for a warm_start=true record")
	}

	orphan, err := z.Get("orphan")
	if err != nil {
		t.Fatal(err)
	}
	if got := orphan.Parent(); got != "" {
		t.Fatalf("Parent() = %q for a record without lineage", got)
	}
	if _, ok := orphan.Epochs(); ok {
		t.Fatal("Epochs() accepted a malformed value")
	}
	if _, ok := orphan.ConvergedAt(); ok {
		t.Fatal("ConvergedAt() reported ok with no entry")
	}
	if orphan.WarmStarted() {
		t.Fatal("WarmStarted() = true for warm_start=false")
	}
}

// TestLineageRoundTrip asserts the reserved keys survive Save/Load intact.
func TestLineageRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "zoo.gob")
	z := NewZoo()
	meta := map[string]string{
		MetaParent:      "braggnn-scan03",
		MetaEpochs:      "25",
		MetaConvergedAt: "12",
		MetaWarmStart:   "true",
		"custom":        "survives-too",
	}
	if err := z.Add("m", lineageState(t), stats.PDF{0.25, 0.75}, meta); err != nil {
		t.Fatal(err)
	}
	if err := z.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadZoo(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := loaded.Get("m")
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range meta {
		if rec.Meta[k] != v {
			t.Fatalf("meta %q = %q after round trip, want %q", k, rec.Meta[k], v)
		}
	}
	if rec.Parent() != "braggnn-scan03" || !rec.WarmStarted() {
		t.Fatalf("lineage accessors broken after round trip: %+v", rec.Meta)
	}
	if n, ok := rec.Epochs(); !ok || n != 25 {
		t.Fatalf("Epochs() = %d, %v after round trip", n, ok)
	}
	if e, ok := rec.ConvergedAt(); !ok || e != 12 {
		t.Fatalf("ConvergedAt() = %d, %v after round trip", e, ok)
	}
}
