package embed

import (
	"math/rand"
	"sync"
	"testing"

	"fairdms/internal/tensor"
)

// TestEmbedConcurrentUse pins the Embedder contract batch ingest relies on:
// eval-mode forwards on one shared model from many goroutines must be
// race-free (run under -race) and must produce the same embeddings as a
// serial pass.
func TestEmbedConcurrentUse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const in, hidden, dim, n = 12, 16, 4, 32

	aug := ImageAugmenter{H: 1, W: in, Noise: 0.01}.View
	embedders := map[string]Embedder{
		"autoencoder": NewAutoencoder(rng, in, hidden, dim),
		"simclr":      NewSimCLR(rng, in, hidden, dim, dim, aug, 0.5),
		"byol":        NewBYOL(rng, in, hidden, dim, aug, 0.99),
		"scaled":      Scaled{E: NewAutoencoder(rng, in, hidden, dim), Factor: 0.5},
	}

	x := tensor.New(n, in)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}

	for name, e := range embedders {
		t.Run(name, func(t *testing.T) {
			want := e.Embed(x)
			const workers = 8
			got := make([]*tensor.Tensor, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					got[w] = e.Embed(x)
				}(w)
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				if got[w].Dim(0) != n || got[w].Dim(1) != dim {
					t.Fatalf("worker %d: embedding shape (%d,%d), want (%d,%d)",
						w, got[w].Dim(0), got[w].Dim(1), n, dim)
				}
				for i, v := range got[w].Data() {
					if v != want.Data()[i] {
						t.Fatalf("worker %d: embedding diverges from serial pass at elem %d: %g != %g",
							w, i, v, want.Data()[i])
					}
				}
			}
		})
	}
}
