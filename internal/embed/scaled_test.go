package embed

import (
	"math"
	"math/rand"
	"testing"

	"fairdms/internal/tensor"
)

// recordingEmbedder captures its input for inspection.
type recordingEmbedder struct {
	dim  int
	last *tensor.Tensor
}

func (r *recordingEmbedder) Dim() int { return r.dim }
func (r *recordingEmbedder) Embed(x *tensor.Tensor) *tensor.Tensor {
	r.last = x
	return tensor.New(x.Dim(0), r.dim)
}

func TestScaledAppliesFactor(t *testing.T) {
	inner := &recordingEmbedder{dim: 2}
	s := Scaled{E: inner, Factor: 1.0 / 255}
	x := tensor.Full(255, 1, 4)
	s.Embed(x)
	if inner.last == nil {
		t.Fatal("inner embedder never called")
	}
	for _, v := range inner.last.Data() {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("scaled input %g, want 1", v)
		}
	}
	if s.Dim() != 2 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	// Original input untouched.
	if x.At(0, 0) != 255 {
		t.Fatal("Scaled mutated the caller's tensor")
	}
}

func TestScaledEmbedderSeparatesPopulations(t *testing.T) {
	// An AE trained on [0,1]-scaled data, fed raw 8-bit counts through the
	// Scaled wrapper, must separate two visually distinct populations —
	// the deployment pattern used for CookieBox detector counts.
	rng := rand.New(rand.NewSource(1))
	n, feats := 24, 36
	x := tensor.New(n, feats)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		// Two populations with different bright regions, 8-bit scale.
		off := 0
		if i%2 == 1 {
			off = feats / 2
			labels[i] = 1
		}
		for j := 0; j < feats/2; j++ {
			x.Set(150+50*rng.Float64(), i, (off+j)%feats)
		}
	}
	ae := NewAutoencoder(rng, feats, 32, 4)
	ae.Train(tensor.Scale(x, 1.0/255), TrainConfig{Epochs: 30, BatchSize: 8, LR: 1e-3, Seed: 2})

	z := EmbedRows(Scaled{E: ae, Factor: 1.0 / 255}, x)
	if sep := separation(z, labels); sep < 1.5 {
		t.Fatalf("wrapped-embedder separation %g, want > 1.5", sep)
	}
}
