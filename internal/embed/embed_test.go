package embed

import (
	"math"
	"math/rand"
	"testing"

	"fairdms/internal/cluster"
	"fairdms/internal/datagen"
	"fairdms/internal/dataloader"
	"fairdms/internal/stats"
	"fairdms/internal/tensor"
)

// twoRegimeData builds a labeled mixture of two visually distinct Bragg
// regimes: narrow Gaussian-ish peaks vs broad Lorentzian ones.
func twoRegimeData(t *testing.T, perRegime int, seed int64) (*tensor.Tensor, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := datagen.DefaultBraggRegime()
	a.Patch = 11
	b := a
	b.WidthMean = 3.4
	b.EtaMean = 0.9
	sa := a.Generate(rng, perRegime)
	sb := b.Generate(rng, perRegime)
	all := append(sa, sb...)
	batch, err := dataloader.Collate(all)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int, 2*perRegime)
	for i := perRegime; i < 2*perRegime; i++ {
		labels[i] = 1
	}
	return batch.X, labels
}

// separation computes mean inter-class distance over mean intra-class
// distance in embedding space — > 1 means classes separate.
func separation(z [][]float64, labels []int) float64 {
	var intra, inter float64
	var nIntra, nInter int
	for i := range z {
		for j := i + 1; j < len(z); j++ {
			d := 0.0
			for k := range z[i] {
				diff := z[i][k] - z[j][k]
				d += diff * diff
			}
			d = math.Sqrt(d)
			if labels[i] == labels[j] {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	return (inter / float64(nInter)) / (intra/float64(nIntra) + 1e-12)
}

func TestAutoencoderTrainsAndSeparatesRegimes(t *testing.T) {
	x, labels := twoRegimeData(t, 40, 1)
	rng := rand.New(rand.NewSource(2))
	ae := NewAutoencoder(rng, x.Dim(1), 64, 8)
	losses := ae.Train(x, TrainConfig{Epochs: 30, BatchSize: 16, LR: 1e-3, Seed: 3})
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("AE loss did not fall: %g -> %g", losses[0], losses[len(losses)-1])
	}
	z := EmbedRows(ae, x)
	if len(z) != x.Dim(0) || len(z[0]) != 8 {
		t.Fatalf("embedding shape %dx%d", len(z), len(z[0]))
	}
	if sep := separation(z, labels); sep < 1.1 {
		t.Fatalf("AE separation %g, want > 1.1", sep)
	}
}

func TestSimCLRTrainsAndSeparatesRegimes(t *testing.T) {
	x, labels := twoRegimeData(t, 32, 4)
	rng := rand.New(rand.NewSource(5))
	aug := ImageAugmenter{H: 11, W: 11, Noise: 0.1, ScaleRange: 0.1}
	s := NewSimCLR(rng, x.Dim(1), 64, 8, 16, aug.View, 0.5)
	losses := s.Train(x, TrainConfig{Epochs: 15, BatchSize: 16, LR: 1e-3, Seed: 6})
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("SimCLR loss did not fall: %g -> %g", losses[0], losses[len(losses)-1])
	}
	z := EmbedRows(s, x)
	if sep := separation(z, labels); sep < 1.1 {
		t.Fatalf("SimCLR separation %g, want > 1.1", sep)
	}
}

func TestBYOLTrainsAndSeparatesRegimes(t *testing.T) {
	x, labels := twoRegimeData(t, 32, 7)
	rng := rand.New(rand.NewSource(8))
	aug := ImageAugmenter{H: 11, W: 11, Noise: 0.1, ScaleRange: 0.1}
	b := NewBYOL(rng, x.Dim(1), 64, 8, aug.View, 0.95)
	sepBefore := separation(EmbedRows(b, x), labels)
	losses := b.Train(x, TrainConfig{Epochs: 20, BatchSize: 16, LR: 2e-3, Seed: 9})
	if math.IsNaN(losses[len(losses)-1]) {
		t.Fatal("BYOL loss is NaN")
	}
	z := EmbedRows(b, x)
	sep := separation(z, labels)
	if sep < 2 {
		t.Fatalf("BYOL separation %g, want > 2", sep)
	}
	if sep <= sepBefore {
		t.Fatalf("training did not improve separation: %g -> %g", sepBefore, sep)
	}
}

func TestBYOLRotationInvariance(t *testing.T) {
	// The paper's §IV failure analysis: embeddings should treat a peak and
	// its rotation as similar once trained with rotation augmentations.
	x, _ := twoRegimeData(t, 32, 10)
	rng := rand.New(rand.NewSource(11))
	aug := ImageAugmenter{H: 11, W: 11, Noise: 0.05, ScaleRange: 0.05}
	b := NewBYOL(rng, x.Dim(1), 64, 8, aug.View, 0.98)
	b.Train(x, TrainConfig{Epochs: 20, BatchSize: 16, LR: 1e-3, Seed: 12})

	// Rotate each image 90° and compare embeddings.
	rot := tensor.New(x.Dim(0), x.Dim(1))
	for i := 0; i < x.Dim(0); i++ {
		copy(rot.Row(i), x.Row(i))
		rotate90(rot.Row(i), 11)
	}
	z := b.Embed(x)
	zr := b.Embed(rot)
	// Mean distance between an image and its rotation must be well below
	// the mean distance between unrelated images.
	var same, cross float64
	n := z.Dim(0)
	for i := 0; i < n; i++ {
		same += rowDist(z.Row(i), zr.Row(i))
		cross += rowDist(z.Row(i), z.Row((i+7)%n))
	}
	if same >= cross {
		t.Fatalf("rotation distance %g not below unrelated distance %g", same/float64(n), cross/float64(n))
	}
}

func rowDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestEmbeddingsDriveJSDSeparation(t *testing.T) {
	// End-to-end sanity: embeddings + clustering must make same-regime
	// dataset PDFs closer (JSD) than cross-regime PDFs. This is the chain
	// fairMS model ranking depends on.
	x, labels := twoRegimeData(t, 40, 13)
	rng := rand.New(rand.NewSource(14))
	ae := NewAutoencoder(rng, x.Dim(1), 64, 8)
	ae.Train(x, TrainConfig{Epochs: 30, BatchSize: 16, LR: 1e-3, Seed: 15})
	z := EmbedRows(ae, x)

	// Split each regime's embeddings in half → 4 pseudo-datasets.
	var a1, a2, b1, b2 [][]float64
	for i, row := range z {
		switch {
		case labels[i] == 0 && len(a1) < 20:
			a1 = append(a1, row)
		case labels[i] == 0:
			a2 = append(a2, row)
		case labels[i] == 1 && len(b1) < 20:
			b1 = append(b1, row)
		default:
			b2 = append(b2, row)
		}
	}
	km, err := cluster.Fit(z, cluster.Config{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pa1, pa2 := km.PDF(a1), km.PDF(a2)
	pb1 := km.PDF(b1)
	within := stats.JSDivergence(pa1, pa2)
	across := stats.JSDivergence(pa1, pb1)
	if within >= across {
		t.Fatalf("within-regime JSD %g >= across-regime %g", within, across)
	}
}

func TestImageAugmenterPreservesLength(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	aug := ImageAugmenter{H: 5, W: 5, Noise: 0.1, ScaleRange: 0.2}
	src := make([]float64, 25)
	for i := range src {
		src[i] = float64(i)
	}
	dst := make([]float64, 25)
	aug.View(rng, src, dst)
	// src must be untouched.
	for i := range src {
		if src[i] != float64(i) {
			t.Fatal("augmenter mutated source")
		}
	}
}

func TestRotate90FourTimesIsIdentity(t *testing.T) {
	img := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]float64(nil), img...)
	for i := 0; i < 4; i++ {
		rotate90(img, 3)
	}
	for i := range img {
		if img[i] != orig[i] {
			t.Fatalf("rot90^4 != id: %v", img)
		}
	}
}

func TestFlipHTwiceIsIdentity(t *testing.T) {
	img := []float64{1, 2, 3, 4, 5, 6}
	orig := append([]float64(nil), img...)
	flipH(img, 2, 3)
	flipH(img, 2, 3)
	for i := range img {
		if img[i] != orig[i] {
			t.Fatalf("flipH² != id: %v", img)
		}
	}
}
