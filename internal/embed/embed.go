// Package embed implements the self-supervised representation learners at
// the heart of fairDS (paper §II-A, §II-C): an Embedder turns bulky detector
// images into compact feature vectors such that semantically similar images
// land close together, enabling cluster-based retrieval of similar labeled
// data. Three built-in methods mirror the paper's menu:
//
//   - Autoencoder — reconstruction bottleneck. Sensitive to pixel-wise
//     differences; the paper reports it fails on rotated Bragg peaks (§IV).
//   - SimCLR — contrastive NT-Xent over augmented view pairs.
//   - BYOL — bootstrap-your-own-latent with an EMA target network; trained
//     to be invariant to physics-inspired augmentations (rotations, flips,
//     noise), which fixed the Bragg indexing failure in the paper.
//
// Users plug custom methods in by implementing Embedder, matching the
// paper's extensible "embedding interface module".
package embed

import (
	"math"
	"math/rand"

	"fairdms/internal/nn"
	"fairdms/internal/tensor"
)

// Embedder maps a batch of flattened images (N, features) to embeddings
// (N, Dim()).
//
// Embed must be safe for concurrent use: batch-ingest pipelines fan
// sub-batches out to parallel embed workers (fairds.IngestLabeledBatch).
// The built-in methods satisfy this because nn eval-mode forwards write no
// layer state; custom implementations that mutate per-call state (e.g.
// Monte-Carlo dropout) must synchronize internally.
type Embedder interface {
	Embed(x *tensor.Tensor) *tensor.Tensor
	Dim() int
}

// Trainer is an Embedder that learns from unlabeled data.
type Trainer interface {
	Embedder
	// Train runs self-supervised training on x and returns per-epoch losses.
	Train(x *tensor.Tensor, cfg TrainConfig) []float64
}

// TrainConfig tunes self-supervised training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
}

func (c *TrainConfig) defaults(n int) {
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.BatchSize <= 0 || c.BatchSize > n {
		c.BatchSize = min(n, 32)
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
}

// Scaled wraps an Embedder with input scaling, so raw detector counts
// (e.g. 8-bit 0–255 images) are brought into the activation range the
// inner model was trained on. Without this, large inputs saturate bounded
// activations and every embedding collapses to the same point.
type Scaled struct {
	E      Embedder
	Factor float64
}

// Dim returns the inner embedder's dimensionality.
func (s Scaled) Dim() int { return s.E.Dim() }

// Embed scales the batch and delegates.
func (s Scaled) Embed(x *tensor.Tensor) *tensor.Tensor {
	return s.E.Embed(tensor.Scale(x, s.Factor))
}

// EmbedRows is a convenience wrapper returning embeddings as row slices,
// the form the clustering package consumes.
func EmbedRows(e Embedder, x *tensor.Tensor) [][]float64 {
	z := e.Embed(x)
	out := make([][]float64, z.Dim(0))
	for i := range out {
		out[i] = append([]float64(nil), z.Row(i)...)
	}
	return out
}

// ---------------------------------------------------------------------------
// Augmentations

// Augment produces a randomized view of a flattened image, in place on the
// provided copy. Implementations must treat src as read-only.
type Augment func(rng *rand.Rand, src []float64, dst []float64)

// ImageAugmenter applies the physics-inspired augmentation menu of the
// paper's BYOL fix: square-image rotations by multiples of 90°, mirror
// flips, additive Gaussian noise, and intensity scaling. Diffraction peaks
// rotated or mirrored are physically identical, so embeddings should be
// invariant to these.
type ImageAugmenter struct {
	H, W       int
	Noise      float64 // additive Gaussian noise stddev
	ScaleRange float64 // intensity scale drawn from 1±ScaleRange
}

// View implements Augment.
func (a ImageAugmenter) View(rng *rand.Rand, src, dst []float64) {
	copy(dst, src)
	if a.H == a.W {
		switch rng.Intn(4) {
		case 1:
			rotate90(dst, a.H)
		case 2:
			rotate180(dst, a.H, a.W)
		case 3:
			rotate90(dst, a.H)
			rotate180(dst, a.H, a.H)
		}
	}
	if rng.Intn(2) == 1 {
		flipH(dst, a.H, a.W)
	}
	scale := 1.0
	if a.ScaleRange > 0 {
		scale = 1 + (rng.Float64()*2-1)*a.ScaleRange
	}
	for i := range dst {
		v := dst[i] * scale
		if a.Noise > 0 {
			v += rng.NormFloat64() * a.Noise
		}
		dst[i] = v
	}
}

// rotate90 rotates a square n×n image counter-clockwise in place.
func rotate90(img []float64, n int) {
	tmp := make([]float64, len(img))
	copy(tmp, img)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			img[(n-1-x)*n+y] = tmp[y*n+x]
		}
	}
}

func rotate180(img []float64, h, w int) {
	for i, j := 0, len(img)-1; i < j; i, j = i+1, j-1 {
		img[i], img[j] = img[j], img[i]
	}
}

func flipH(img []float64, h, w int) {
	for y := 0; y < h; y++ {
		row := img[y*w : (y+1)*w]
		for i, j := 0, w-1; i < j; i, j = i+1, j-1 {
			row[i], row[j] = row[j], row[i]
		}
	}
}

// makeViews builds one augmented-view tensor for each row of x.
func makeViews(rng *rand.Rand, x *tensor.Tensor, aug Augment) *tensor.Tensor {
	out := tensor.New(x.Dim(0), x.Dim(1))
	for i := 0; i < x.Dim(0); i++ {
		aug(rng, x.Row(i), out.Row(i))
	}
	return out
}

// ---------------------------------------------------------------------------
// Autoencoder

// Autoencoder learns embeddings through a reconstruction bottleneck.
type Autoencoder struct {
	enc, dec *nn.Model
	dim      int
}

// NewAutoencoder builds a dense autoencoder in → hidden → dim → hidden → in.
func NewAutoencoder(rng *rand.Rand, in, hidden, dim int) *Autoencoder {
	return &Autoencoder{
		enc: nn.Sequential(
			nn.NewLinear(rng, in, hidden), nn.NewReLU(),
			nn.NewLinear(rng, hidden, dim), nn.NewTanh(),
		),
		dec: nn.Sequential(
			nn.NewLinear(rng, dim, hidden), nn.NewReLU(),
			nn.NewLinear(rng, hidden, in),
		),
		dim: dim,
	}
}

// Dim returns the embedding dimensionality.
func (a *Autoencoder) Dim() int { return a.dim }

// Embed returns encoder outputs in eval mode.
func (a *Autoencoder) Embed(x *tensor.Tensor) *tensor.Tensor {
	return a.enc.Forward(x, false)
}

// Train minimizes reconstruction MSE and returns per-epoch losses.
func (a *Autoencoder) Train(x *tensor.Tensor, cfg TrainConfig) []float64 {
	cfg.defaults(x.Dim(0))
	params := append(a.enc.Params(), a.dec.Params()...)
	opt := nn.NewAdam(params, cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := x.Dim(0)
	perm := rng.Perm(n)
	var losses []float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		total, batches := 0.0, 0
		for lo := 0; lo < n; lo += cfg.BatchSize {
			hi := min(lo+cfg.BatchSize, n)
			bx := nn.Gather(x, perm[lo:hi])
			opt.ZeroGrad()
			z := a.enc.Forward(bx, true)
			recon := a.dec.Forward(z, true)
			loss, grad := nn.MSE(recon, bx)
			gz := a.dec.Backward(grad)
			a.enc.Backward(gz)
			opt.Step()
			total += loss
			batches++
		}
		losses = append(losses, total/float64(batches))
	}
	return losses
}

// ---------------------------------------------------------------------------
// SimCLR

// SimCLR learns embeddings contrastively: two augmented views of each image
// must agree (NT-Xent) against all other batch members as negatives.
type SimCLR struct {
	enc  *nn.Model // backbone: input → dim (the embedding)
	proj *nn.Model // projection head: dim → projDim (loss space)
	aug  Augment
	dim  int
	temp float64
}

// NewSimCLR builds a SimCLR embedder with the given augmentation policy.
func NewSimCLR(rng *rand.Rand, in, hidden, dim, projDim int, aug Augment, temperature float64) *SimCLR {
	if temperature <= 0 {
		temperature = 0.5
	}
	return &SimCLR{
		enc: nn.Sequential(
			nn.NewLinear(rng, in, hidden), nn.NewReLU(),
			nn.NewLinear(rng, hidden, dim), nn.NewTanh(),
		),
		proj: nn.Sequential(
			nn.NewLinear(rng, dim, projDim), nn.NewReLU(),
			nn.NewLinear(rng, projDim, projDim),
		),
		aug: aug, dim: dim, temp: temperature,
	}
}

// Dim returns the embedding dimensionality.
func (s *SimCLR) Dim() int { return s.dim }

// Embed returns backbone outputs (projection head is training-only, as in
// the original method).
func (s *SimCLR) Embed(x *tensor.Tensor) *tensor.Tensor {
	return s.enc.Forward(x, false)
}

// Train minimizes NT-Xent over view pairs and returns per-epoch losses.
// Both views pass through the network as one concatenated batch so a single
// forward/backward updates shared weights.
func (s *SimCLR) Train(x *tensor.Tensor, cfg TrainConfig) []float64 {
	cfg.defaults(x.Dim(0))
	params := append(s.enc.Params(), s.proj.Params()...)
	opt := nn.NewAdam(params, cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := x.Dim(0)
	perm := rng.Perm(n)
	var losses []float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		total, batches := 0.0, 0
		for lo := 0; lo < n; lo += cfg.BatchSize {
			hi := min(lo+cfg.BatchSize, n)
			if hi-lo < 2 {
				continue // NT-Xent needs at least one negative
			}
			bx := nn.Gather(x, perm[lo:hi])
			b := bx.Dim(0)
			va := makeViews(rng, bx, s.aug)
			vb := makeViews(rng, bx, s.aug)
			// Concatenate views: rows [0,b) are view A, [b,2b) view B.
			cat := tensor.New(2*b, bx.Dim(1))
			for i := 0; i < b; i++ {
				copy(cat.Row(i), va.Row(i))
				copy(cat.Row(b+i), vb.Row(i))
			}
			opt.ZeroGrad()
			h := s.enc.Forward(cat, true)
			z := s.proj.Forward(h, true)
			za := tensor.New(b, z.Dim(1))
			zb := tensor.New(b, z.Dim(1))
			for i := 0; i < b; i++ {
				copy(za.Row(i), z.Row(i))
				copy(zb.Row(i), z.Row(b+i))
			}
			loss, ga, gb := nn.NTXent(za, zb, s.temp)
			gz := tensor.New(2*b, z.Dim(1))
			for i := 0; i < b; i++ {
				copy(gz.Row(i), ga.Row(i))
				copy(gz.Row(b+i), gb.Row(i))
			}
			gh := s.proj.Backward(gz)
			s.enc.Backward(gh)
			opt.Step()
			total += loss
			batches++
		}
		if batches == 0 {
			losses = append(losses, math.NaN())
			continue
		}
		losses = append(losses, total/float64(batches))
	}
	return losses
}

// ---------------------------------------------------------------------------
// BYOL

// BYOL learns embeddings without negatives: an online network predicts the
// EMA target network's representation of a differently augmented view.
type BYOL struct {
	online    *nn.Model // backbone+projector
	predictor *nn.Model
	target    *nn.Model // EMA copy of online
	aug       Augment
	dim       int
	tau       float64

	// encLayers is how many leading layers of online form the backbone
	// whose output Embed returns.
	encLayers int
}

// NewBYOL builds a BYOL embedder. tau is the EMA decay (default 0.99).
func NewBYOL(rng *rand.Rand, in, hidden, dim int, aug Augment, tau float64) *BYOL {
	if tau <= 0 || tau >= 1 {
		tau = 0.99
	}
	// The backbone output is unbounded (no Tanh): bounding it compresses
	// representation variance and worsens BYOL's partial-collapse tendency
	// on small datasets.
	mk := func() *nn.Model {
		return nn.Sequential(
			nn.NewLinear(rng, in, hidden), nn.NewReLU(),
			nn.NewLinear(rng, hidden, dim),
			nn.NewLinear(rng, dim, dim), // projector
		)
	}
	online := mk()
	target := mk()
	// Target starts as an exact copy of online.
	if err := nn.CopyWeights(target, online); err != nil {
		panic("embed: byol target clone: " + err.Error())
	}
	pred := nn.Sequential(
		nn.NewLinear(rng, dim, dim), nn.NewReLU(),
		nn.NewLinear(rng, dim, dim),
	)
	return &BYOL{online: online, predictor: pred, target: target, aug: aug, dim: dim, tau: tau, encLayers: 3}
}

// Dim returns the embedding dimensionality.
func (b *BYOL) Dim() int { return b.dim }

// Embed returns the online backbone output (pre-projector).
func (b *BYOL) Embed(x *tensor.Tensor) *tensor.Tensor {
	out := x
	for _, l := range b.online.Layers()[:b.encLayers] {
		out = l.Forward(out, false)
	}
	return out
}

// Train runs BYOL: normalized-MSE between the online prediction of one view
// and the target projection of the other, symmetrized, with EMA target
// updates. Returns per-epoch losses.
func (b *BYOL) Train(x *tensor.Tensor, cfg TrainConfig) []float64 {
	cfg.defaults(x.Dim(0))
	params := append(b.online.Params(), b.predictor.Params()...)
	opt := nn.NewAdam(params, cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := x.Dim(0)
	perm := rng.Perm(n)
	var losses []float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		total, batches := 0.0, 0
		for lo := 0; lo < n; lo += cfg.BatchSize {
			hi := min(lo+cfg.BatchSize, n)
			bx := nn.Gather(x, perm[lo:hi])
			bsz := bx.Dim(0)
			va := makeViews(rng, bx, b.aug)
			vb := makeViews(rng, bx, b.aug)

			// Symmetrized pass: online sees [A;B], target sees [B;A];
			// online(view) must predict target(other view).
			cat := tensor.New(2*bsz, bx.Dim(1))
			tcat := tensor.New(2*bsz, bx.Dim(1))
			for i := 0; i < bsz; i++ {
				copy(cat.Row(i), va.Row(i))
				copy(cat.Row(bsz+i), vb.Row(i))
				copy(tcat.Row(i), vb.Row(i))
				copy(tcat.Row(bsz+i), va.Row(i))
			}
			opt.ZeroGrad()
			zo := b.online.Forward(cat, true)
			p := b.predictor.Forward(zo, true)
			zt := b.target.Forward(tcat, false) // no grad through target

			loss, gp := byolLoss(p, zt)
			gz := b.predictor.Backward(gp)
			b.online.Backward(gz)
			opt.Step()
			if err := nn.EMAUpdate(b.target, b.online, b.tau); err != nil {
				panic("embed: byol ema: " + err.Error())
			}
			total += loss
			batches++
		}
		losses = append(losses, total/float64(batches))
	}
	return losses
}

// byolLoss computes 2 − 2·cos(p, z) per row (the BYOL regression loss on
// L2-normalized vectors) and its gradient with respect to p.
func byolLoss(p, z *tensor.Tensor) (float64, *tensor.Tensor) {
	n, d := p.Dim(0), p.Dim(1)
	grad := tensor.New(n, d)
	loss := 0.0
	for i := 0; i < n; i++ {
		pr, zr := p.Row(i), z.Row(i)
		pn, zn := norm(pr), norm(zr)
		dot := 0.0
		for j := 0; j < d; j++ {
			dot += pr[j] * zr[j]
		}
		cos := dot / (pn * zn)
		loss += 2 - 2*cos
		g := grad.Row(i)
		// d(−2·cos)/dp = −2·(z/(|p||z|) − cos·p/|p|²)
		for j := 0; j < d; j++ {
			g[j] = -2 * (zr[j]/(pn*zn) - cos*pr[j]/(pn*pn)) / float64(n)
		}
	}
	return loss / float64(n), grad
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s) + 1e-12
}
