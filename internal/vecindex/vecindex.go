// Package vecindex provides the in-memory vector index behind fairDS's
// nearest-label reuse (paper §II-A, "efficient lookup by embedding
// indexing"). Before this package, every nearest-neighbor query re-fetched
// all embeddings of the predicted cluster from the document store and
// scanned them linearly, so lookup latency grew with history size and each
// query crossed the wire when the store was remote. A vecindex mirrors the
// (document ID, cluster, embedding) triples in process, in flat
// cache-friendly float64 slabs, and answers the same query with a
// sublinear — or at worst in-memory linear — probe.
//
// Two implementations share the Index interface:
//
//   - Flat: exact nearest neighbor by chunked parallel scan of the
//     cluster's slab. The right default: fairDS has already narrowed the
//     search to one cluster, so a scan over that partition is both exact
//     and fast.
//   - IVF: inverted-file index in the FAISS sense. Large partitions are
//     sub-partitioned by a coarse k-means quantizer (reusing
//     cluster.KMeans), and queries probe only the NProbe closest sublists,
//     widening to the remaining lists only when every probed candidate is
//     excluded. Approximate for NProbe < number of sublists, exact
//     otherwise.
//
// Both support incremental Add on ingest, Remove, exclusion predicates for
// the Fig. 9 distinct-draw loop, and full Rebuild for the §II-C reindex
// pass. All methods are safe for concurrent use.
package vecindex

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Entry is one indexed vector: the backing document's ID, its coarse
// cluster (the fairDS k-means assignment), and its embedding.
type Entry struct {
	ID      string
	Cluster int
	Vec     []float64
}

// Result is a nearest-neighbor answer: the matched document ID and the
// squared Euclidean distance to the query.
type Result struct {
	ID    string
	Dist2 float64
}

// Stats snapshots an index's counters. Counters accumulate across the
// index's lifetime (Rebuild resets Size but not the counters).
type Stats struct {
	// Size is the number of vectors currently indexed.
	Size int `json:"size"`
	// Queries counts Nearest calls.
	Queries int64 `json:"queries"`
	// Probed counts vectors distance-compared across all queries; Probed /
	// Queries is the mean per-query scan width, the number an IVF keeps
	// sublinear.
	Probed int64 `json:"probed"`
	// ListsProbed counts inverted lists (Flat: cluster partitions) visited.
	ListsProbed int64 `json:"lists_probed"`
	// Rejected counts Add calls refused for a dimension mismatch.
	Rejected int64 `json:"rejected"`
}

// Index is an incrementally maintained per-cluster nearest-neighbor index
// over embedding vectors. Implementations are safe for concurrent use.
type Index interface {
	// Add indexes one vector under its cluster. All vectors in an index
	// must share one dimensionality (fixed by the first Add or Rebuild);
	// a mismatch returns ErrDimMismatch. Re-adding an existing ID replaces
	// its vector and cluster.
	Add(id string, cluster int, vec []float64) error
	// Remove drops the vector with the given ID, reporting whether it was
	// present.
	Remove(id string) bool
	// Nearest returns the closest indexed vector to q within the given
	// cluster, skipping IDs for which exclude returns true (nil excludes
	// nothing). ok is false when the cluster holds no eligible vectors.
	Nearest(cluster int, q []float64, exclude func(id string) bool) (res Result, ok bool)
	// Rebuild atomically replaces the entire index contents — the §II-C
	// reindex pass, where embeddings and cluster assignments are refreshed
	// together.
	Rebuild(entries []Entry) error
	// Len reports the number of indexed vectors.
	Len() int
	// Stats snapshots the index counters.
	Stats() Stats
}

// ErrDimMismatch is returned by Add when a vector's length disagrees with
// the index's established dimensionality — in fairDS terms, a corrupt
// stored embedding.
var ErrDimMismatch = errors.New("vecindex: vector dimension mismatch")

// dimError wraps ErrDimMismatch with the observed lengths.
func dimError(got, want int) error {
	return fmt.Errorf("%w: got %d, index holds %d-dimensional vectors", ErrDimMismatch, got, want)
}

// scanChunk is the smallest slab worth splitting across goroutines; below
// it, a single-threaded scan beats the fork/join overhead.
const scanChunk = 2048

// scanNearest finds the closest vector to q in a flat slab of n vectors of
// the given dim, skipping excluded IDs. It fans out across goroutines for
// large n. Ties break toward the lowest slot, so results are deterministic
// regardless of worker scheduling. Returns the winning slot (-1 if none)
// and its squared distance.
func scanNearest(vecs []float64, ids []string, dim int, q []float64, exclude func(string) bool) (int, float64) {
	n := len(ids)
	workers := runtime.GOMAXPROCS(0)
	if n < 2*scanChunk || workers <= 1 {
		return scanRange(vecs, ids, dim, q, exclude, 0, n)
	}
	if max := (n + scanChunk - 1) / scanChunk; workers > max {
		workers = max
	}
	type best struct {
		slot  int
		dist2 float64
	}
	results := make([]best, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			slot, d2 := scanRange(vecs, ids, dim, q, exclude, lo, hi)
			results[w] = best{slot: slot, dist2: d2}
		}(w, lo, hi)
	}
	wg.Wait()
	bestSlot, bestD2 := -1, 0.0
	for _, r := range results { // in worker order = slot order, so ties keep the lowest slot
		if r.slot >= 0 && (bestSlot < 0 || r.dist2 < bestD2) {
			bestSlot, bestD2 = r.slot, r.dist2
		}
	}
	return bestSlot, bestD2
}

// scanRange is the sequential inner loop of scanNearest over slots
// [lo, hi).
func scanRange(vecs []float64, ids []string, dim int, q []float64, exclude func(string) bool, lo, hi int) (int, float64) {
	bestSlot, bestD2 := -1, 0.0
	for i := lo; i < hi; i++ {
		if exclude != nil && exclude(ids[i]) {
			continue
		}
		v := vecs[i*dim : (i+1)*dim]
		d2 := 0.0
		for j, x := range q {
			d := x - v[j]
			d2 += d * d
		}
		if bestSlot < 0 || d2 < bestD2 {
			bestSlot, bestD2 = i, d2
		}
	}
	return bestSlot, bestD2
}
