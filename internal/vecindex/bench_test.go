package vecindex

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchIndex populates idx with n 8-dimensional vectors in one cluster —
// the worst case for a per-cluster index, and the shape of a skewed
// experiment where most history lands in one regime.
func benchIndex(b *testing.B, idx Index, n int) []float64 {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	for _, e := range randEntries(rng, n, 8, 1) {
		if err := idx.Add(e.ID, e.Cluster, e.Vec); err != nil {
			b.Fatal(err)
		}
	}
	q := make([]float64, 8)
	for j := range q {
		q[j] = rng.NormFloat64()
	}
	return q
}

func BenchmarkNearestFlat(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 50_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			idx := NewFlat()
			q := benchIndex(b, idx, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := idx.Nearest(0, q, nil); !ok {
					b.Fatal("no result")
				}
			}
		})
	}
}

func BenchmarkNearestIVF(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 50_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			idx := NewIVF(IVFConfig{SplitThreshold: 512, NProbe: 4, Seed: 3})
			q := benchIndex(b, idx, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := idx.Nearest(0, q, nil); !ok {
					b.Fatal("no result")
				}
			}
		})
	}
}

func BenchmarkAddFlat(b *testing.B) {
	idx := NewFlat()
	rng := rand.New(rand.NewSource(2))
	vecs := make([][]float64, 1024)
	for i := range vecs {
		v := make([]float64, 8)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.Add(fmt.Sprintf("doc-%d", i), i%16, vecs[i%len(vecs)]); err != nil {
			b.Fatal(err)
		}
	}
}
