package vecindex

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"fairdms/internal/cluster"
	"fairdms/internal/tensor"
)

// IVFConfig tunes an IVF index.
type IVFConfig struct {
	// SplitThreshold is the partition size at which a cluster gets
	// sub-partitioned by a coarse quantizer. Below it, the partition is a
	// single list and queries are exact. Default 512.
	SplitThreshold int
	// NProbe is how many sublists a query scans, closest-centroid first.
	// Larger is more accurate and slower; NProbe >= the sublist count makes
	// the query exact. Default 4.
	NProbe int
	// Seed drives the k-means sub-quantizer fits.
	Seed int64
}

func (c *IVFConfig) defaults() {
	if c.SplitThreshold <= 0 {
		c.SplitThreshold = 512
	}
	if c.NProbe <= 0 {
		c.NProbe = 4
	}
}

// IVF is an inverted-file Index: clusters whose partitions outgrow
// SplitThreshold are sub-partitioned by a k-means coarse quantizer
// (reusing cluster.KMeans), and queries scan only the NProbe sublists
// whose centroids sit closest to the query — widening to the remaining
// lists only when every probed candidate was excluded. The quantizer is
// refit incrementally: whenever a partition doubles since its last fit,
// the next Add re-quantizes it, so list sizes track the data
// distribution without a manual rebuild.
type IVF struct {
	cfg IVFConfig

	mu    sync.RWMutex
	dim   int
	parts map[int]*ivfPartition
	pos   map[string]ivfPos

	queries     atomic.Int64
	probed      atomic.Int64
	listsProbed atomic.Int64
	rejected    atomic.Int64
}

// ivfPartition is one cluster: either a single unquantized list
// (km == nil) or a set of sublists keyed by the coarse quantizer's
// centroids.
type ivfPartition struct {
	km      *cluster.KMeans
	lists   []*flatPartition
	size    int
	fitSize int // partition size at the last quantizer fit
}

// ivfPos locates a vector for O(1) removal.
type ivfPos struct {
	cluster, list, slot int
}

// NewIVF returns an empty inverted-file index.
func NewIVF(cfg IVFConfig) *IVF {
	cfg.defaults()
	return &IVF{cfg: cfg, parts: make(map[int]*ivfPartition), pos: make(map[string]ivfPos)}
}

// Add indexes one vector, replacing any previous vector under the same ID,
// and re-quantizes the target partition when it has doubled since the last
// fit.
func (v *IVF) Add(id string, clusterID int, vec []float64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.dim == 0 {
		v.dim = len(vec)
	}
	if len(vec) != v.dim || v.dim == 0 {
		v.rejected.Add(1)
		return dimError(len(vec), v.dim)
	}
	if old, exists := v.pos[id]; exists {
		v.removeLocked(id, old)
	}
	p := v.parts[clusterID]
	if p == nil {
		p = &ivfPartition{lists: []*flatPartition{{}}}
		v.parts[clusterID] = p
	}
	list := 0
	if p.km != nil {
		list, _ = p.km.PredictOne(vec)
	}
	lp := p.lists[list]
	v.pos[id] = ivfPos{cluster: clusterID, list: list, slot: len(lp.ids)}
	lp.ids = append(lp.ids, id)
	lp.vecs = append(lp.vecs, vec...)
	p.size++
	if p.size >= v.cfg.SplitThreshold && p.size >= 2*p.fitSize {
		v.refitLocked(clusterID, p)
	}
	return nil
}

// refitLocked re-quantizes one partition: fits a fresh coarse k-means on
// all its vectors and redistributes them into per-centroid sublists.
func (v *IVF) refitLocked(clusterID int, p *ivfPartition) {
	rows := make([][]float64, 0, p.size)
	ids := make([]string, 0, p.size)
	for _, lp := range p.lists {
		for i := range lp.ids {
			rows = append(rows, lp.vecs[i*v.dim:(i+1)*v.dim])
			ids = append(ids, lp.ids[i])
		}
	}
	k := int(math.Sqrt(float64(len(rows))))
	if k < 2 {
		k = 2
	}
	if k > 64 {
		k = 64
	}
	if k > len(rows) {
		k = len(rows)
	}
	km, err := cluster.Fit(rows, cluster.Config{K: k, Seed: v.cfg.Seed + int64(clusterID)})
	if err != nil {
		return // partition stays usable with its current lists
	}
	assign := km.Predict(rows)
	lists := make([]*flatPartition, k)
	for i := range lists {
		lists[i] = &flatPartition{}
	}
	for i, a := range assign {
		lp := lists[a]
		v.pos[ids[i]] = ivfPos{cluster: clusterID, list: a, slot: len(lp.ids)}
		lp.ids = append(lp.ids, ids[i])
		lp.vecs = append(lp.vecs, rows[i]...)
	}
	p.km = km
	p.lists = lists
	p.fitSize = p.size
}

// Remove drops the vector with the given ID.
func (v *IVF) Remove(id string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	loc, ok := v.pos[id]
	if !ok {
		return false
	}
	v.removeLocked(id, loc)
	return true
}

// removeLocked swap-removes a slot from its sublist.
func (v *IVF) removeLocked(id string, loc ivfPos) {
	p := v.parts[loc.cluster]
	lp := p.lists[loc.list]
	last := len(lp.ids) - 1
	if loc.slot != last {
		moved := lp.ids[last]
		lp.ids[loc.slot] = moved
		copy(lp.vecs[loc.slot*v.dim:(loc.slot+1)*v.dim], lp.vecs[last*v.dim:(last+1)*v.dim])
		v.pos[moved] = ivfPos{cluster: loc.cluster, list: loc.list, slot: loc.slot}
	}
	lp.ids = lp.ids[:last]
	lp.vecs = lp.vecs[:last*v.dim]
	delete(v.pos, id)
	p.size--
	if p.size == 0 {
		delete(v.parts, loc.cluster)
	}
}

// Nearest probes the NProbe sublists closest to the query (all lists when
// the partition is unquantized), widening to the remaining lists only if
// every probed candidate was excluded — so a distinct-draw loop that has
// consumed whole sublists still finds the true next-nearest remainder.
func (v *IVF) Nearest(clusterID int, q []float64, exclude func(string) bool) (Result, bool) {
	v.queries.Add(1)
	v.mu.RLock()
	defer v.mu.RUnlock()
	p := v.parts[clusterID]
	if p == nil || len(q) != v.dim {
		return Result{}, false
	}
	order := make([]int, len(p.lists))
	for i := range order {
		order[i] = i
	}
	if p.km != nil {
		d2c := make([]float64, len(p.km.Centers))
		for i, c := range p.km.Centers {
			d2c[i] = tensor.SquaredDistance(q, c)
		}
		sort.Slice(order, func(a, b int) bool { return d2c[order[a]] < d2c[order[b]] })
	}
	probeLimit := v.cfg.NProbe
	if p.km == nil || probeLimit > len(order) {
		probeLimit = len(order)
	}
	bestSlot, bestList, bestD2 := -1, -1, 0.0
	for rank, li := range order {
		if rank == probeLimit && bestSlot >= 0 {
			break // probe budget spent and a candidate exists
		}
		// Once widening starts (budget spent, everything so far excluded or
		// empty) it scans ALL remaining lists, so a widened answer is the
		// exact nearest among the unprobed remainder.
		lp := p.lists[li]
		if len(lp.ids) == 0 {
			continue
		}
		v.listsProbed.Add(1)
		v.probed.Add(int64(len(lp.ids)))
		slot, d2 := scanNearest(lp.vecs, lp.ids, v.dim, q, exclude)
		if slot >= 0 && (bestSlot < 0 || d2 < bestD2) {
			bestSlot, bestList, bestD2 = slot, li, d2
		}
	}
	if bestSlot < 0 {
		return Result{}, false
	}
	return Result{ID: p.lists[bestList].ids[bestSlot], Dist2: bestD2}, true
}

// Rebuild atomically replaces the index contents, quantizing oversized
// partitions up front.
func (v *IVF) Rebuild(entries []Entry) error {
	fresh := NewIVF(v.cfg)
	for _, e := range entries {
		if err := fresh.Add(e.ID, e.Cluster, e.Vec); err != nil {
			v.rejected.Add(1)
			return err
		}
	}
	v.mu.Lock()
	v.dim = fresh.dim
	v.parts = fresh.parts
	v.pos = fresh.pos
	v.mu.Unlock()
	return nil
}

// Len reports the number of indexed vectors.
func (v *IVF) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.pos)
}

// Stats snapshots the index counters.
func (v *IVF) Stats() Stats {
	return Stats{
		Size:        v.Len(),
		Queries:     v.queries.Load(),
		Probed:      v.probed.Load(),
		ListsProbed: v.listsProbed.Load(),
		Rejected:    v.rejected.Load(),
	}
}
