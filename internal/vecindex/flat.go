package vecindex

import (
	"sync"
	"sync/atomic"
)

// Flat is the exact Index: one contiguous float64 slab per cluster,
// scanned in parallel chunks. Queries take a read lock, so concurrent
// Nearest calls proceed in parallel; Add/Remove/Rebuild serialize briefly.
type Flat struct {
	mu    sync.RWMutex
	dim   int                    // 0 until the first Add/Rebuild fixes it
	parts map[int]*flatPartition // cluster → slab
	pos   map[string]flatPos     // id → location, for Remove and re-Add

	queries     atomic.Int64
	probed      atomic.Int64
	listsProbed atomic.Int64
	rejected    atomic.Int64
}

// flatPartition is one cluster's vectors, stored row-major in a single
// slab so a scan walks memory sequentially.
type flatPartition struct {
	ids  []string
	vecs []float64 // len(ids) * dim
}

// flatPos locates a vector for O(1) removal.
type flatPos struct {
	cluster int
	slot    int
}

// NewFlat returns an empty exact index.
func NewFlat() *Flat {
	return &Flat{parts: make(map[int]*flatPartition), pos: make(map[string]flatPos)}
}

// Add indexes one vector, replacing any previous vector under the same ID.
func (f *Flat) Add(id string, cluster int, vec []float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dim == 0 {
		f.dim = len(vec)
	}
	if len(vec) != f.dim || f.dim == 0 {
		f.rejected.Add(1)
		return dimError(len(vec), f.dim)
	}
	if old, exists := f.pos[id]; exists {
		f.removeLocked(id, old)
	}
	p := f.parts[cluster]
	if p == nil {
		p = &flatPartition{}
		f.parts[cluster] = p
	}
	f.pos[id] = flatPos{cluster: cluster, slot: len(p.ids)}
	p.ids = append(p.ids, id)
	p.vecs = append(p.vecs, vec...)
	return nil
}

// Remove drops the vector with the given ID.
func (f *Flat) Remove(id string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	loc, ok := f.pos[id]
	if !ok {
		return false
	}
	f.removeLocked(id, loc)
	return true
}

// removeLocked swap-removes a slot from its partition: the last vector
// moves into the vacated slot so the slab stays dense.
func (f *Flat) removeLocked(id string, loc flatPos) {
	p := f.parts[loc.cluster]
	last := len(p.ids) - 1
	if loc.slot != last {
		moved := p.ids[last]
		p.ids[loc.slot] = moved
		copy(p.vecs[loc.slot*f.dim:(loc.slot+1)*f.dim], p.vecs[last*f.dim:(last+1)*f.dim])
		f.pos[moved] = flatPos{cluster: loc.cluster, slot: loc.slot}
	}
	p.ids = p.ids[:last]
	p.vecs = p.vecs[:last*f.dim]
	delete(f.pos, id)
	if last == 0 {
		delete(f.parts, loc.cluster)
	}
}

// Nearest scans the cluster's slab (in parallel for large partitions) and
// returns the closest non-excluded vector.
func (f *Flat) Nearest(cluster int, q []float64, exclude func(string) bool) (Result, bool) {
	f.queries.Add(1)
	f.mu.RLock()
	defer f.mu.RUnlock()
	p := f.parts[cluster]
	if p == nil || len(q) != f.dim {
		return Result{}, false
	}
	f.listsProbed.Add(1)
	f.probed.Add(int64(len(p.ids)))
	slot, d2 := scanNearest(p.vecs, p.ids, f.dim, q, exclude)
	if slot < 0 {
		return Result{}, false
	}
	return Result{ID: p.ids[slot], Dist2: d2}, true
}

// Rebuild atomically replaces the index contents. Duplicate IDs follow
// Add semantics: last write wins.
func (f *Flat) Rebuild(entries []Entry) error {
	fresh := NewFlat()
	for _, e := range entries {
		if err := fresh.Add(e.ID, e.Cluster, e.Vec); err != nil {
			f.rejected.Add(1)
			return err
		}
	}
	f.mu.Lock()
	f.dim = fresh.dim
	f.parts = fresh.parts
	f.pos = fresh.pos
	f.mu.Unlock()
	return nil
}

// Len reports the number of indexed vectors.
func (f *Flat) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.pos)
}

// Stats snapshots the index counters.
func (f *Flat) Stats() Stats {
	return Stats{
		Size:        f.Len(),
		Queries:     f.queries.Load(),
		Probed:      f.probed.Load(),
		ListsProbed: f.listsProbed.Load(),
		Rejected:    f.rejected.Load(),
	}
}
