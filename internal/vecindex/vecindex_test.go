package vecindex

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"fairdms/internal/tensor"
)

// randEntries generates n entries with dim-dimensional vectors spread over
// k clusters.
func randEntries(rng *rand.Rand, n, dim, k int) []Entry {
	entries := make([]Entry, n)
	for i := range entries {
		vec := make([]float64, dim)
		for j := range vec {
			vec[j] = rng.NormFloat64()
		}
		entries[i] = Entry{ID: fmt.Sprintf("doc-%d", i), Cluster: rng.Intn(k), Vec: vec}
	}
	return entries
}

// bruteNearest is the reference scan the index must agree with.
func bruteNearest(entries []Entry, clusterID int, q []float64, exclude map[string]bool) (Result, bool) {
	best := Result{Dist2: math.Inf(1)}
	found := false
	for _, e := range entries {
		if e.Cluster != clusterID || exclude[e.ID] {
			continue
		}
		if d2 := tensor.SquaredDistance(q, e.Vec); d2 < best.Dist2 {
			best = Result{ID: e.ID, Dist2: d2}
			found = true
		}
	}
	return best, found
}

// indexes under test; IVF with a huge NProbe is exact, IVF with a small
// threshold exercises quantized partitions.
func testIndexes() map[string]Index {
	return map[string]Index{
		"flat":      NewFlat(),
		"ivf-exact": NewIVF(IVFConfig{SplitThreshold: 64, NProbe: 1 << 20, Seed: 7}),
	}
}

func TestParityWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	entries := randEntries(rng, 2000, 8, 5)
	for name, idx := range testIndexes() {
		t.Run(name, func(t *testing.T) {
			for _, e := range entries {
				if err := idx.Add(e.ID, e.Cluster, e.Vec); err != nil {
					t.Fatal(err)
				}
			}
			if idx.Len() != len(entries) {
				t.Fatalf("Len = %d, want %d", idx.Len(), len(entries))
			}
			for qi := 0; qi < 200; qi++ {
				q := make([]float64, 8)
				for j := range q {
					q[j] = rng.NormFloat64()
				}
				k := rng.Intn(5)
				got, ok := idx.Nearest(k, q, nil)
				want, wok := bruteNearest(entries, k, q, nil)
				if ok != wok || got.ID != want.ID || math.Abs(got.Dist2-want.Dist2) > 1e-12 {
					t.Fatalf("query %d cluster %d: index (%v, %v) != brute (%v, %v)", qi, k, got, ok, want, wok)
				}
			}
		})
	}
}

func TestExclusionDistinctDraws(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	entries := randEntries(rng, 600, 6, 1) // one cluster so draws exhaust it
	q := make([]float64, 6)
	for name, idx := range testIndexes() {
		t.Run(name, func(t *testing.T) {
			for _, e := range entries {
				if err := idx.Add(e.ID, e.Cluster, e.Vec); err != nil {
					t.Fatal(err)
				}
			}
			// Fig. 9 distinct-draw loop: repeatedly take the nearest not yet
			// drawn. Distances must be non-decreasing, IDs distinct, and every
			// draw must match the brute-force answer under the same exclusions.
			drawn := map[string]bool{}
			prev := -1.0
			for i := 0; i < len(entries); i++ {
				got, ok := idx.Nearest(0, q, func(id string) bool { return drawn[id] })
				want, wok := bruteNearest(entries, 0, q, drawn)
				if !ok || !wok || got.ID != want.ID {
					t.Fatalf("draw %d: index (%v, %v) != brute (%v, %v)", i, got, ok, want, wok)
				}
				if drawn[got.ID] {
					t.Fatalf("draw %d returned already-drawn %s", i, got.ID)
				}
				if got.Dist2 < prev {
					t.Fatalf("draw %d: distance went backwards (%g < %g)", i, got.Dist2, prev)
				}
				drawn[got.ID] = true
				prev = got.Dist2
			}
			if _, ok := idx.Nearest(0, q, func(id string) bool { return drawn[id] }); ok {
				t.Fatal("exhausted cluster still returned a result")
			}
		})
	}
}

func TestRemoveAndReplace(t *testing.T) {
	for name, idx := range testIndexes() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			entries := randEntries(rng, 300, 4, 3)
			for _, e := range entries {
				if err := idx.Add(e.ID, e.Cluster, e.Vec); err != nil {
					t.Fatal(err)
				}
			}
			// Remove half, verify parity on the survivors.
			kept := entries[:0:0]
			for i, e := range entries {
				if i%2 == 0 {
					if !idx.Remove(e.ID) {
						t.Fatalf("Remove(%s) = false", e.ID)
					}
				} else {
					kept = append(kept, e)
				}
			}
			if idx.Remove("doc-0") {
				t.Fatal("second Remove of the same ID reported true")
			}
			if idx.Len() != len(kept) {
				t.Fatalf("Len = %d, want %d", idx.Len(), len(kept))
			}
			q := make([]float64, 4)
			for k := 0; k < 3; k++ {
				got, ok := idx.Nearest(k, q, nil)
				want, wok := bruteNearest(kept, k, q, nil)
				if ok != wok || got.ID != want.ID {
					t.Fatalf("cluster %d after removal: (%v, %v) != (%v, %v)", k, got, ok, want, wok)
				}
			}
			// Re-adding an ID moves it: replace a survivor's vector and
			// cluster, and the old location must be gone.
			moved := kept[0]
			newVec := make([]float64, 4)
			for j := range newVec {
				newVec[j] = 100 + float64(j)
			}
			if err := idx.Add(moved.ID, 2, newVec); err != nil {
				t.Fatal(err)
			}
			if idx.Len() != len(kept) {
				t.Fatalf("Len after replace = %d, want %d", idx.Len(), len(kept))
			}
			got, ok := idx.Nearest(2, newVec, nil)
			if !ok || got.ID != moved.ID || got.Dist2 != 0 {
				t.Fatalf("replaced vector not found at new location: (%v, %v)", got, ok)
			}
		})
	}
}

func TestDimMismatchRejected(t *testing.T) {
	for name, idx := range testIndexes() {
		t.Run(name, func(t *testing.T) {
			if err := idx.Add("a", 0, []float64{1, 2, 3}); err != nil {
				t.Fatal(err)
			}
			if err := idx.Add("b", 0, []float64{1, 2}); err == nil {
				t.Fatal("short vector accepted")
			}
			if err := idx.Add("c", 0, nil); err == nil {
				t.Fatal("nil vector accepted")
			}
			st := idx.Stats()
			if st.Rejected != 2 {
				t.Fatalf("Rejected = %d, want 2", st.Rejected)
			}
			if st.Size != 1 {
				t.Fatalf("Size = %d, want 1", st.Size)
			}
			if err := idx.Rebuild([]Entry{
				{ID: "a", Cluster: 0, Vec: []float64{1, 2}},
				{ID: "b", Cluster: 0, Vec: []float64{1}},
			}); err == nil {
				t.Fatal("mixed-dimension Rebuild accepted")
			}
		})
	}
}

func TestRebuildReplacesContents(t *testing.T) {
	for name, idx := range testIndexes() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(4))
			if err := idx.Rebuild(randEntries(rng, 500, 5, 4)); err != nil {
				t.Fatal(err)
			}
			fresh := randEntries(rng, 800, 5, 4)
			if err := idx.Rebuild(fresh); err != nil {
				t.Fatal(err)
			}
			if idx.Len() != len(fresh) {
				t.Fatalf("Len = %d, want %d", idx.Len(), len(fresh))
			}
			q := make([]float64, 5)
			for k := 0; k < 4; k++ {
				got, ok := idx.Nearest(k, q, nil)
				want, wok := bruteNearest(fresh, k, q, nil)
				if ok != wok || got.ID != want.ID {
					t.Fatalf("cluster %d after rebuild: (%v, %v) != (%v, %v)", k, got, ok, want, wok)
				}
			}
		})
	}
}

// TestIVFApproximateProbesFewerButWidensWhenExcluded checks the two IVF
// behaviors the Flat index doesn't have: a small NProbe scans a fraction
// of a quantized partition, and exclusion-exhausted probes widen instead
// of returning nothing.
func TestIVFApproximateProbesFewerButWidensWhenExcluded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	entries := randEntries(rng, 4000, 8, 1)
	idx := NewIVF(IVFConfig{SplitThreshold: 256, NProbe: 2, Seed: 9})
	for _, e := range entries {
		if err := idx.Add(e.ID, e.Cluster, e.Vec); err != nil {
			t.Fatal(err)
		}
	}
	q := make([]float64, 8)
	before := idx.Stats()
	if _, ok := idx.Nearest(0, q, nil); !ok {
		t.Fatal("no result from populated index")
	}
	after := idx.Stats()
	if scanned := after.Probed - before.Probed; scanned >= int64(len(entries)) {
		t.Fatalf("NProbe=2 scanned %d of %d vectors — quantization is not pruning", scanned, len(entries))
	}
	// Exclude everything: the probe must widen through all sublists and
	// still report no result rather than stopping at the probe budget.
	if _, ok := idx.Nearest(0, q, func(string) bool { return true }); ok {
		t.Fatal("fully excluded cluster returned a result")
	}
	// Exclude all but one arbitrary ID: widening must find it no matter
	// which sublist it landed in.
	keep := entries[1234].ID
	got, ok := idx.Nearest(0, q, func(id string) bool { return id != keep })
	if !ok || got.ID != keep {
		t.Fatalf("widening missed the only eligible ID: (%v, %v)", got, ok)
	}
}

// TestConcurrentAddQueryRemove hammers an index from parallel writers,
// readers, and removers; run with -race. Queries must only ever see a
// consistent snapshot (IDs it was told about, correct distances).
func TestConcurrentAddQueryRemove(t *testing.T) {
	for name, idx := range testIndexes() {
		t.Run(name, func(t *testing.T) {
			const writers, n = 4, 400
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < n; i++ {
						vec := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
						id := fmt.Sprintf("w%d-%d", w, i)
						if err := idx.Add(id, i%4, vec); err != nil {
							t.Error(err)
							return
						}
						if i%7 == 0 {
							idx.Remove(fmt.Sprintf("w%d-%d", w, rng.Intn(i+1)))
						}
					}
				}(w)
			}
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(100 + r)))
					q := []float64{0.5, 0.5, 0.5}
					for i := 0; i < n; i++ {
						if res, ok := idx.Nearest(rng.Intn(4), q, nil); ok {
							if res.Dist2 < 0 {
								t.Errorf("negative distance %g for %s", res.Dist2, res.ID)
								return
							}
						}
					}
				}(r)
			}
			wg.Wait()
			if got, want := idx.Stats().Queries, int64(4*n); got != want { // 4 readers × n queries
				t.Fatalf("Queries = %d, want %d", got, want)
			}
		})
	}
}
