// Package fsx centralizes the crash-safe file-write discipline every
// durable artifact in the repo must follow: write to a temporary sibling,
// fsync, then atomically rename over the destination. PRs 1–2 introduced
// the pattern inline in docstore.Store.Save and fairms.Zoo.Save; this
// package is its single home, and the fsyncrename analyzer (cmd/fairvet)
// mechanically keeps every other os.WriteFile/os.Create out of snapshot
// paths.
//
// The guarantee: at any crash point, the destination path holds either the
// previous complete content or the new complete content — never a
// truncated or interleaved file. (Directory-entry durability after rename
// additionally needs a directory fsync, which callers doing multi-file
// commits can layer on; single-snapshot readers tolerate an absent file,
// so the repo's snapshot paths do not require it.)
package fsx

import (
	"fmt"
	"io"
	"os"
)

// WriteAtomic streams content produced by write into path crash-safely:
// the payload lands in path+".tmp", is fsynced, and is renamed over path
// only after a clean close. On any failure the temp file is removed and
// the previous content of path (if any) is left untouched.
func WriteAtomic(path string, write func(io.Writer) error) error {
	return WriteAtomicFS(OS{}, path, write)
}

// WriteAtomicFS is WriteAtomic against an explicit FS, so the
// crash-injection layer can cut the snapshot write short at any byte the
// same way it cuts WAL appends.
func WriteAtomicFS(fsys FS, path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return fmt.Errorf("fsx: create %s: %w", tmp, err)
	}
	fail := func(stage string, err error) error {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("fsx: %s %s: %w", stage, path, err)
	}
	if err := write(f); err != nil {
		return fail("write", err)
	}
	if err := f.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := f.Close(); err != nil {
		return fail("close", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("fsx: rename %s: %w", path, err)
	}
	return nil
}

// WriteFileAtomic is WriteAtomic for a byte slice: the crash-safe
// replacement for os.WriteFile. perm applies to newly created files (the
// temp file inherits it before the rename).
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return WriteAtomic(path, func(w io.Writer) error {
		if f, ok := w.(File); ok {
			if err := f.Chmod(perm); err != nil {
				return err
			}
		}
		_, err := w.Write(data)
		return err
	})
}
