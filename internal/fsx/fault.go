package fsx

import (
	"errors"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sync"
)

// ErrInjectedCrash is returned by every FaultFS operation after the
// simulated machine has crashed (budget exhausted or Crash called).
var ErrInjectedCrash = errors.New("fsx: injected crash")

// ErrInjectedWriteFailure is returned by writes when FaultPlan.FailWrites
// is set — a disk-full / EIO stand-in that leaves the machine up.
var ErrInjectedWriteFailure = errors.New("fsx: injected write failure")

// FaultPlan configures a FaultFS.
//
// CrashAfterBytes, when positive, is a byte budget across all writes
// through the FS: the write that crosses it is cut short exactly at the
// boundary (a torn write) and every subsequent operation fails with
// ErrInjectedCrash. Sweeping the budget over [1, total bytes written]
// simulates a power cut at every point of a workload.
//
// DropUnsynced selects the post-crash disk model. When false the crash is
// a process kill: everything the kernel accepted — synced or not — is
// still on disk, including the torn tail. When true it is a power cut:
// at crash time every tracked file is truncated back to its last synced
// size, so only fsynced bytes survive.
//
// NoopSync makes Sync succeed without making anything durable (an
// unfaithful disk); combined with DropUnsynced=true it models a drive
// that lies about flushes. FailWrites makes every write fail with
// ErrInjectedWriteFailure without crashing the machine.
type FaultPlan struct {
	CrashAfterBytes int64
	DropUnsynced    bool
	NoopSync        bool
	FailWrites      bool
}

// FaultFS is an FS that injects write faults and crashes over the real
// filesystem. It tracks the synced size of every file written through it
// so a crash can discard unsynced bytes. Safe for concurrent use.
type FaultFS struct {
	plan FaultPlan

	mu      sync.Mutex
	crashed bool                   // guarded by mu
	budget  int64                  // guarded by mu; remaining bytes before crash
	files   map[string]*faultEntry // guarded by mu; cleaned path → state
}

// faultEntry tracks one path's durability state across opens.
type faultEntry struct {
	size   int64 // current on-disk size as written through the FaultFS
	synced int64 // bytes guaranteed to survive a DropUnsynced crash
}

// NewFaultFS builds a fault-injecting FS over the real filesystem.
func NewFaultFS(plan FaultPlan) *FaultFS {
	return &FaultFS{plan: plan, budget: plan.CrashAfterBytes, files: make(map[string]*faultEntry)}
}

// Crash simulates the machine dying now: every subsequent operation fails
// with ErrInjectedCrash, and with DropUnsynced set all unsynced bytes are
// truncated away. Idempotent.
func (f *FaultFS) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashLocked()
}

// Crashed reports whether the simulated machine has crashed.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// lint:holds f.mu
func (f *FaultFS) crashLocked() {
	if f.crashed {
		return
	}
	f.crashed = true
	if !f.plan.DropUnsynced {
		return
	}
	for path, e := range f.files {
		if e.synced < e.size {
			// Post-crash truncation uses the real filesystem directly:
			// the FaultFS itself is already "dead".
			os.Truncate(path, e.synced)
			e.size = e.synced
		}
	}
}

// lint:holds f.mu
func (f *FaultFS) entryLocked(path string, size int64, preexisting bool) *faultEntry {
	e, ok := f.files[path]
	if !ok {
		e = &faultEntry{size: size}
		if preexisting {
			// Files that existed before the FaultFS saw them (seeded
			// fixtures, prior generations) count as fully durable.
			e.synced = size
		}
		f.files[path] = e
	}
	return e
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	path := filepath.Clean(name)
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, ErrInjectedCrash
	}
	f.mu.Unlock()
	st, serr := os.Stat(path)
	//lint:ignore fsyncrename fault-injection seam; durability is the caller's contract, enforced by the tests using this FS.
	file, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		file.Close()
		return nil, ErrInjectedCrash
	}
	var size int64
	preexisting := serr == nil
	if preexisting && flag&os.O_TRUNC == 0 {
		size = st.Size()
	}
	e := f.entryLocked(path, size, preexisting)
	if flag&os.O_TRUNC != 0 {
		e.size = 0
		if e.synced > 0 {
			e.synced = 0
		}
	}
	off := int64(0)
	if flag&os.O_APPEND != 0 {
		off = e.size
	}
	return &faultFile{fs: f, f: file, path: path, entry: e, off: off}, nil
}

func (f *FaultFS) Open(name string) (io.ReadCloser, error) {
	if f.Crashed() {
		return nil, ErrInjectedCrash
	}
	return os.Open(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if f.Crashed() {
		return nil, ErrInjectedCrash
	}
	return os.ReadFile(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrInjectedCrash
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	op, np := filepath.Clean(oldpath), filepath.Clean(newpath)
	if e, ok := f.files[op]; ok {
		delete(f.files, op)
		f.files[np] = e
	} else {
		delete(f.files, np)
	}
	return nil
}

func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrInjectedCrash
	}
	if err := os.Remove(name); err != nil {
		return err
	}
	delete(f.files, filepath.Clean(name))
	return nil
}

func (f *FaultFS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrInjectedCrash
	}
	if err := os.Truncate(name, size); err != nil {
		return err
	}
	if e, ok := f.files[filepath.Clean(name)]; ok {
		if e.size > size {
			e.size = size
		}
		if e.synced > size {
			e.synced = size
		}
	}
	return nil
}

func (f *FaultFS) ReadDir(name string) ([]iofs.DirEntry, error) {
	if f.Crashed() {
		return nil, ErrInjectedCrash
	}
	return os.ReadDir(name)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if f.Crashed() {
		return ErrInjectedCrash
	}
	return os.MkdirAll(path, perm)
}

func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	if f.Crashed() {
		return nil, ErrInjectedCrash
	}
	return os.Stat(name)
}

func (f *FaultFS) SyncDir(name string) error {
	if f.Crashed() {
		return ErrInjectedCrash
	}
	// Directory-entry durability is not modeled (renames/removals are
	// applied immediately and survive crashes); SyncDir is a no-op here.
	return nil
}

// faultFile applies the plan to one open file. The underlying *os.File is
// real, so data lands on the actual disk; the FaultFS only decides how
// much of each write is admitted and what a crash destroys.
type faultFile struct {
	fs    *FaultFS
	f     *os.File
	path  string
	entry *faultEntry
	off   int64 // this handle's write offset within the file
}

func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	if w.fs.crashed {
		w.fs.mu.Unlock()
		return 0, ErrInjectedCrash
	}
	if w.fs.plan.FailWrites {
		w.fs.mu.Unlock()
		return 0, ErrInjectedWriteFailure
	}
	admit := len(p)
	crash := false
	if w.fs.plan.CrashAfterBytes > 0 {
		if int64(admit) >= w.fs.budget {
			admit = int(w.fs.budget)
			crash = true
		}
		w.fs.budget -= int64(admit)
	}
	var n int
	var err error
	if admit > 0 {
		n, err = w.f.Write(p[:admit])
		w.off += int64(n)
		if w.off > w.entry.size {
			w.entry.size = w.off
		}
	}
	if crash {
		w.fs.crashLocked()
		if err == nil {
			err = ErrInjectedCrash
		}
	}
	w.fs.mu.Unlock()
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	return n, err
}

func (w *faultFile) Sync() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.fs.crashed {
		return ErrInjectedCrash
	}
	if w.fs.plan.NoopSync {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if w.entry.synced < w.entry.size {
		w.entry.synced = w.entry.size
	}
	return nil
}

func (w *faultFile) Chmod(mode os.FileMode) error {
	if w.fs.Crashed() {
		return ErrInjectedCrash
	}
	return w.f.Chmod(mode)
}

func (w *faultFile) Close() error {
	// Closing is allowed even post-crash so callers can release handles.
	return w.f.Close()
}
