package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read back %q, %v; want \"v1\"", got, err)
	}
	// Overwrite: the previous content is fully replaced.
	if err := WriteFileAtomic(path, []byte("version-two"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic overwrite: %v", err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "version-two" {
		t.Fatalf("after overwrite: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestWriteAtomicFailureKeepsPrevious(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := WriteFileAtomic(path, []byte("stable"), 0o644); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	boom := errors.New("mid-write failure")
	err := WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v; want wrapped mid-write failure", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "stable" {
		t.Fatalf("previous content not preserved: %q, %v", got, rerr)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind after failure: %v", err)
	}
}

func TestWriteFileAtomicPerm(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := WriteFileAtomic(path, []byte("x"), 0o600); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o600 {
		t.Fatalf("perm = %v; want 0600", fi.Mode().Perm())
	}
}
