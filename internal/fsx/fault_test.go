package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func writeThrough(t *testing.T, fs FS, path string, chunks ...[]byte) error {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	for _, c := range chunks {
		if _, err := f.Write(c); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestFaultFSBudgetTearsTheCrossingWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	fs := NewFaultFS(FaultPlan{CrashAfterBytes: 5})

	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abc"))
	if n != 3 || err != nil {
		t.Fatalf("first write admitted %d, %v; want 3, nil", n, err)
	}
	// This write crosses the 5-byte budget: exactly 2 more bytes land,
	// then the machine is dead.
	n, err = f.Write([]byte("defg"))
	if n != 2 || !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("crossing write admitted %d, %v; want 2, ErrInjectedCrash", n, err)
	}
	if !fs.Crashed() {
		t.Fatal("machine should be crashed")
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("post-crash write: %v; want ErrInjectedCrash", err)
	}
	f.Close()

	// Process-kill model: the torn tail is on disk.
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "abcde" {
		t.Fatalf("on-disk %q, %v; want torn tail \"abcde\"", got, err)
	}
	for _, op := range []func() error{
		func() error { _, err := fs.OpenFile(path, os.O_WRONLY, 0o644); return err },
		func() error { _, err := fs.ReadFile(path); return err },
		func() error { return fs.Rename(path, path+"2") },
		func() error { return fs.MkdirAll(filepath.Join(dir, "sub"), 0o755) },
		func() error { return fs.SyncDir(dir) },
	} {
		if err := op(); !errors.Is(err, ErrInjectedCrash) {
			t.Fatalf("post-crash op: %v; want ErrInjectedCrash", err)
		}
	}
}

func TestFaultFSDropUnsyncedTruncatesToSyncedSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	fs := NewFaultFS(FaultPlan{DropUnsynced: true})

	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-volatile")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	f.Close()

	got, err := os.ReadFile(path)
	if err != nil || string(got) != "durable" {
		t.Fatalf("after power cut: %q, %v; want only fsynced bytes \"durable\"", got, err)
	}
}

func TestFaultFSNoopSyncLosesEverything(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	fs := NewFaultFS(FaultPlan{DropUnsynced: true, NoopSync: true})
	if err := writeThrough(t, fs, path, []byte("lying-disk")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	got, err := os.ReadFile(path)
	if err != nil || len(got) != 0 {
		t.Fatalf("after crash on a lying disk: %q, %v; want empty", got, err)
	}
}

func TestFaultFSFailWrites(t *testing.T) {
	fs := NewFaultFS(FaultPlan{FailWrites: true})
	path := filepath.Join(t.TempDir(), "f")
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjectedWriteFailure) {
		t.Fatalf("write: %v; want ErrInjectedWriteFailure", err)
	}
	if fs.Crashed() {
		t.Fatal("FailWrites must not crash the machine")
	}
}

func TestFaultFSRenameMovesDurabilityTracking(t *testing.T) {
	dir := t.TempDir()
	old, final := filepath.Join(dir, "x.tmp"), filepath.Join(dir, "x")
	fs := NewFaultFS(FaultPlan{DropUnsynced: true})
	if err := writeThrough(t, fs, old, []byte("synced")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(old, final); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	got, err := os.ReadFile(final)
	if err != nil || string(got) != "synced" {
		t.Fatalf("renamed file after crash: %q, %v; want \"synced\"", got, err)
	}
}

func TestFaultFSPreexistingFilesCountAsDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seed")
	if err := os.WriteFile(path, []byte("fixture"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultFS(FaultPlan{DropUnsynced: true})
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-unsynced")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	f.Close()
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "fixture" {
		t.Fatalf("after crash: %q, %v; want the preexisting bytes intact", got, err)
	}
}

func TestWriteAtomicFSUnderFaultFS(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap")
	fs := NewFaultFS(FaultPlan{})
	err := WriteAtomicFS(fs, path, func(w io.Writer) error {
		_, werr := w.Write([]byte("v1"))
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "v1" {
		t.Fatalf("read back %q, %v; want \"v1\"", got, rerr)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}
