package fsx

import (
	"fmt"
	"io"
	iofs "io/fs"
	"os"
)

// File is the slice of *os.File behaviour durable writers need: append
// bytes, force them to stable storage, close. *os.File implements it
// directly; the fault-injection layer returns wrappers that miscount,
// short-write, or refuse.
type File interface {
	io.Writer
	Chmod(mode os.FileMode) error
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations behind every durable artifact
// (snapshots, WAL segments). Production code uses OS, the passthrough;
// crash-injection tests substitute a FaultFS so a "power cut" can land at
// any byte of any write. Write paths obtained through OpenFile carry the
// same discipline as raw *os.File: nothing is durable until Sync (and,
// for renames/removals, until SyncDir on the parent directory).
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (io.ReadCloser, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	ReadDir(name string) ([]iofs.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory, making renames and removals within it
	// durable. Multi-file commit protocols (snapshot rename followed by
	// WAL segment removal) need it between the two steps.
	SyncDir(name string) error
}

// OS is the passthrough FS backed by the real filesystem.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	//lint:ignore fsyncrename FS is the injection seam under WriteAtomicFS and wal; callers own the sync discipline.
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OS) ReadDir(name string) ([]iofs.DirEntry, error) { return os.ReadDir(name) }

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return fmt.Errorf("fsx: sync dir %s: %w", name, err)
	}
	return cerr
}
