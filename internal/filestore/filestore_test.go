package filestore

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fairdms/internal/codec"
)

func sample(v float64) *codec.Sample {
	return codec.SampleFromFloats([]float64{v, v + 1}, []int{2}, codec.F64, []float64{v})
}

func TestAppendGetRoundTrip(t *testing.T) {
	s, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		idx, err := s.Append(sample(float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if idx != i {
			t.Fatalf("Append returned index %d, want %d", idx, i)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	got, err := s.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Floats()[0] != 3 || got.Label[0] != 3 {
		t.Fatalf("sample 3 = %v label %v", got.Floats(), got.Label)
	}
}

func TestOpenExistingStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendAll([]*codec.Sample{sample(1), sample(2)}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d", s2.Len())
	}
	got, err := s2.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Floats()[0] != 2 {
		t.Fatalf("sample 1 = %v", got.Floats())
	}
	// Appending after reopen continues the numbering.
	idx, err := s2.Append(sample(3))
	if err != nil || idx != 2 {
		t.Fatalf("append after reopen: idx=%d err=%v", idx, err)
	}
}

func TestOpenRejectsGappyDirectory(t *testing.T) {
	dir := t.TempDir()
	// A file with the wrong number breaks the dense-index invariant.
	if err := os.WriteFile(filepath.Join(dir, "sample-00000005.smp"), []byte{1}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("expected error for non-dense sample numbering")
	}
}

func TestOpenMissingDirectory(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error for missing directory")
	}
}

func TestGetOutOfRange(t *testing.T) {
	s, _ := Create(t.TempDir())
	if _, err := s.Get(0); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := s.Get(-1); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestConcurrentAppendsAndReads(t *testing.T) {
	s, _ := Create(t.TempDir())
	// Seed a few samples so readers have something.
	for i := 0; i < 4; i++ {
		s.Append(sample(float64(i)))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := s.Append(sample(9)); err != nil {
					errs <- err
					return
				}
				if _, err := s.Get(i % 4); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.Len() != 44 {
		t.Fatalf("Len = %d, want 44", s.Len())
	}
}

func TestPayloadPreservedExactly(t *testing.T) {
	s, _ := Create(t.TempDir())
	orig := codec.SampleFromFloats([]float64{1, 2, 3, 4}, []int{2, 2}, codec.U16, []float64{0.5, 0.25})
	if _, err := s.Append(orig); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, orig.Data) {
		t.Fatal("payload bytes altered by round trip")
	}
	if got.Dtype != codec.U16 || len(got.Shape) != 2 {
		t.Fatalf("metadata altered: %+v", got)
	}
}
