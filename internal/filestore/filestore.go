// Package filestore is fairDMS's stand-in for reading training tensors
// straight from an NFS mount (paper §III-D): each sample is one raw-codec
// file on disk, read back with no per-element deserialization. It supplies
// the "NFS" series in the Figs. 6–8 storage comparison.
package filestore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"fairdms/internal/codec"
	"fairdms/internal/fsx"
)

const fileExt = ".smp"

// Store is a directory of raw-encoded sample files. Reads are lock-free;
// appends serialize on a mutex only to assign the next file number.
type Store struct {
	dir string

	mu sync.Mutex
	n  int
}

// Create initializes an empty store at dir, creating the directory.
func Create(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("filestore: create %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Open attaches to an existing store directory, counting its samples.
func Open(dir string) (*Store, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("filestore: open %s: %w", dir, err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), fileExt) {
			n++
		}
	}
	// Verify the numbering is dense 0..n-1 so Get(i) is well-defined.
	names := make([]string, 0, n)
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), fileExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for i, name := range names {
		if name != sampleName(i) {
			return nil, fmt.Errorf("filestore: %s: unexpected file %q at position %d", dir, name, i)
		}
	}
	return &Store{dir: dir, n: n}, nil
}

func sampleName(i int) string { return fmt.Sprintf("sample-%08d%s", i, fileExt) }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of stored samples.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Append writes a sample as the next file and returns its index.
func (s *Store) Append(sample *codec.Sample) (int, error) {
	data, err := codec.Raw{}.Encode(sample)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	idx := s.n
	s.n++
	s.mu.Unlock()

	path := filepath.Join(s.dir, sampleName(idx))
	if err := fsx.WriteFileAtomic(path, data, 0o644); err != nil {
		return 0, fmt.Errorf("filestore: write %s: %w", path, err)
	}
	return idx, nil
}

// AppendAll writes samples in order, returning the index of the first.
func (s *Store) AppendAll(samples []*codec.Sample) (int, error) {
	first := -1
	for _, smp := range samples {
		idx, err := s.Append(smp)
		if err != nil {
			return first, err
		}
		if first < 0 {
			first = idx
		}
	}
	return first, nil
}

// Get reads sample i. Concurrent Gets are safe and parallel.
func (s *Store) Get(i int) (*codec.Sample, error) {
	if i < 0 || i >= s.Len() {
		return nil, fmt.Errorf("filestore: index %d out of range [0, %d)", i, s.Len())
	}
	path := filepath.Join(s.dir, sampleName(i))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("filestore: read %s: %w", path, err)
	}
	smp, err := (codec.Raw{}).Decode(data)
	if err != nil {
		return nil, fmt.Errorf("filestore: decode %s: %w", path, err)
	}
	return smp, nil
}
