package dmsapi

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"fairdms/internal/docstore"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
	"fairdms/internal/nn"
	"fairdms/internal/stats"
)

// benchZoo builds a zoo of n models with k-bin training PDFs — large enough
// that ranking (O(n·k) JSD + sort) dominates a recommend request.
func benchZoo(b *testing.B, n, k int) *fairms.Zoo {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	state := nn.Sequential(nn.NewLinear(rng, 2, 2)).State() // weights don't matter for ranking
	zoo := fairms.NewZoo()
	for i := 0; i < n; i++ {
		pdf := make(stats.PDF, k)
		total := 0.0
		for j := range pdf {
			pdf[j] = rng.Float64()
			total += pdf[j]
		}
		for j := range pdf {
			pdf[j] /= total
		}
		if err := zoo.Add(fmt.Sprintf("m%04d", i), state, pdf, nil); err != nil {
			b.Fatal(err)
		}
	}
	return zoo
}

func benchQuery(k int) stats.PDF {
	pdf := make(stats.PDF, k)
	for j := range pdf {
		pdf[j] = 1 / float64(k)
	}
	return pdf
}

// BenchmarkRecommend measures recommend throughput over real TCP with the
// coalescing LRU enabled vs disabled. Many concurrent training jobs asking
// for the same dataset signature is exactly the hot pattern the cache
// exists for: the cached path answers from the LRU, the uncached path
// re-ranks the whole zoo per request.
func BenchmarkRecommend(b *testing.B) {
	const nModels, kBins = 2048, 128
	for _, bench := range []struct {
		name      string
		cacheSize int
	}{
		{"uncached", -1}, // memoization off; each request ranks the zoo
		{"cached", 256},
	} {
		b.Run(bench.name, func(b *testing.B) {
			srv, err := NewServer(ServerConfig{
				DS:         benchDataService(b),
				Zoo:        benchZoo(b, nModels, kBins),
				CacheSize:  bench.cacheSize,
				BootstrapK: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Shutdown(context.Background())
			client, err := Dial(addr)
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()

			query := benchQuery(kBins)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec, err := client.Recommend(query, 0)
				if err != nil {
					b.Fatal(err)
				}
				if !rec.OK {
					b.Fatal("no recommendation")
				}
			}
		})
	}
}

// BenchmarkRecommendRank isolates the server-side compute the cache
// avoids, for comparison against the full HTTP numbers above.
func BenchmarkRecommendRank(b *testing.B) {
	zoo := benchZoo(b, 2048, 128)
	query := benchQuery(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := zoo.Recommend(query); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDataService(b *testing.B) *fairds.Service {
	b.Helper()
	store := docstore.NewStore().Collection("peaks")
	svc, err := fairds.New(idEmbedder{dim: 6}, store, fairds.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return svc
}
