package dmsapi

import (
	"errors"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"

	"fairdms/internal/codec"
)

// TestIngestBatchEndToEnd drives the batch endpoint over real TCP: the
// first batch bootstrap-fits the clustering model, every document commits,
// and the store and /statsz reflect it.
func TestIngestBatchEndToEnd(t *testing.T) {
	_, client := startServer(t, ServerConfig{})
	a, b := twoRegimes(21, 50)

	resp, err := client.IngestBatch("run-a", a)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Inserted != len(a) || len(resp.Errors) != 0 {
		t.Fatalf("inserted %d (errors %v), want %d clean", resp.Inserted, resp.Errors, len(a))
	}
	for i, id := range resp.IDs {
		if id == "" {
			t.Fatalf("doc %d missing ID", i)
		}
	}
	// Second batch exercises the post-bootstrap path.
	resp, err = client.IngestBatch("run-b", b)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Inserted != len(b) {
		t.Fatalf("second batch inserted %d, want %d", resp.Inserted, len(b))
	}
	h, err := client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Samples != len(a)+len(b) {
		t.Fatalf("store holds %d samples, want %d", h.Samples, len(a)+len(b))
	}
	if h.K == 0 {
		t.Fatal("batch ingest did not bootstrap the clustering model")
	}
	st, err := client.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	ep := st.Endpoints["data.ingest_batch"]
	if ep.Count != 2 || ep.Errors != 0 {
		t.Fatalf("ingest_batch endpoint stats = %+v, want 2 clean requests", ep)
	}
}

// TestIngestBatchPartialFailureOverWire: malformed wire documents (bad
// dtype, truncated payload) fail individually; the rest of the batch
// commits — the satellite regression at the API layer.
func TestIngestBatchPartialFailureOverWire(t *testing.T) {
	_, client := startServer(t, ServerConfig{})
	a, _ := twoRegimes(22, 12)

	wire := FromCodecSlice(a)
	wire[3].Dtype = 200             // unknown dtype
	wire[7].Data = wire[7].Data[:2] // truncated payload
	wire[9].Shape = []int{0}        // no elements
	var resp IngestBatchResponse
	if err := client.postJSON(PathIngestBatch, IngestBatchRequest{Dataset: "d", Samples: wire}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Inserted != len(a)-3 {
		t.Fatalf("inserted %d, want %d", resp.Inserted, len(a)-3)
	}
	wantBad := map[int]bool{3: true, 7: true, 9: true}
	if len(resp.Errors) != len(wantBad) {
		t.Fatalf("errors = %v, want exactly docs 3, 7, 9", resp.Errors)
	}
	for _, de := range resp.Errors {
		if !wantBad[de.Index] {
			t.Errorf("unexpected per-doc error for %d: %s", de.Index, de.Error)
		}
		if resp.IDs[de.Index] != "" {
			t.Errorf("failed doc %d has an ID", de.Index)
		}
	}
	h, _ := client.Health()
	if h.Samples != len(a)-3 {
		t.Fatalf("store holds %d, want %d", h.Samples, len(a)-3)
	}
}

// TestIngestBatchMixedWidthBootstrap: per-document failure must hold even
// on the very first batch of a fresh daemon (regression: the bootstrap fit
// collated the whole batch and failed the request with 400 on a width
// mismatch that a fitted daemon would report per document).
func TestIngestBatchMixedWidthBootstrap(t *testing.T) {
	_, client := startServer(t, ServerConfig{})
	a, _ := twoRegimes(27, 10)
	a[4] = codec.SampleFromFloats([]float64{1, 2, 3, 4}, []int{2, 2}, codec.F64, nil)

	resp, err := client.IngestBatch("first", a)
	if err != nil {
		t.Fatalf("mixed-width bootstrap batch failed wholesale: %v", err)
	}
	if resp.Inserted != len(a)-1 || len(resp.Errors) != 1 || resp.Errors[0].Index != 4 {
		t.Fatalf("resp = %+v, want %d inserted and one error at index 4", resp, len(a)-1)
	}
	h, err := client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.K == 0 || h.Samples != len(a)-1 {
		t.Fatalf("health = %+v: bootstrap fit or commits missing", h)
	}
}

// TestIngestBatchSizeCap: batches beyond MaxBatchDocs are rejected with
// 413 before any work happens.
func TestIngestBatchSizeCap(t *testing.T) {
	_, client := startServer(t, ServerConfig{MaxBatchDocs: 4})
	a, _ := twoRegimes(23, 5)
	_, err := client.IngestBatch("d", a)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("err = %v, want 413", err)
	}
	if h, _ := client.Health(); h.Samples != 0 {
		t.Fatalf("capped batch still stored %d documents", h.Samples)
	}
	// At the cap is fine.
	if resp, err := client.IngestBatch("d", a[:4]); err != nil || resp.Inserted != 4 {
		t.Fatalf("at-cap batch: resp=%+v err=%v", resp, err)
	}
}

// TestIngestBatchEmptyIsBadRequest guards the wholesale-failure modes.
func TestIngestBatchEmptyIsBadRequest(t *testing.T) {
	_, client := startServer(t, ServerConfig{})
	var resp IngestBatchResponse
	err := client.postJSON(PathIngestBatch, IngestBatchRequest{Dataset: "d"}, &resp)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("empty batch err = %v, want 400", err)
	}
}

// TestBatchIngesterThroughFlakyProxy routes the batching helper through a
// proxy that kills the first connection: the transport retry layer must
// recover and every document must still commit exactly once.
func TestBatchIngesterThroughFlakyProxy(t *testing.T) {
	srv, _ := startServer(t, ServerConfig{})

	proxy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	var once sync.Once
	go func() {
		for {
			conn, err := proxy.Accept()
			if err != nil {
				return
			}
			killed := false
			once.Do(func() {
				conn.Close() // first connection dies before any response
				killed = true
			})
			if killed {
				continue
			}
			back, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				conn.Close()
				continue
			}
			go func() { io.Copy(back, conn); back.Close() }()
			go func() { io.Copy(conn, back); conn.Close() }()
		}
	}()

	client, err := Dial(proxy.Addr().String())
	if err != nil {
		t.Fatalf("dial through flaky proxy: %v", err)
	}
	defer client.Close()

	a, _ := twoRegimes(24, 60)
	ing := client.NewBatchIngester("flaky", BatchIngesterConfig{BatchSize: 8, MaxInFlight: 3})
	for _, smp := range a {
		ing.Add(smp)
	}
	sum, err := ing.Close()
	if err != nil {
		t.Fatalf("batch ingest through flaky proxy: %v (summary %+v)", err, sum)
	}
	if sum.Added != len(a) || sum.Inserted != len(a) || sum.Failed != 0 {
		t.Fatalf("summary = %+v, want all %d inserted", sum, len(a))
	}
	if h, _ := client.Health(); h.Samples != len(a) {
		t.Fatalf("store holds %d, want %d", h.Samples, len(a))
	}
}

// TestBatchIngesterDocErrorIndices: per-doc errors surface with global
// Add-order indices across multiple batches.
func TestBatchIngesterDocErrorIndices(t *testing.T) {
	_, client := startServer(t, ServerConfig{})
	a, _ := twoRegimes(25, 20)
	// Fit clusters with a clean first batch so the bad doc cannot poison
	// the bootstrap reference width.
	if _, err := client.IngestBatch("seed", a[:4]); err != nil {
		t.Fatal(err)
	}

	bad := codec.SampleFromFloats([]float64{1, 2}, []int{2}, codec.F64, nil)
	ing := client.NewBatchIngester("d", BatchIngesterConfig{BatchSize: 5, MaxInFlight: 2})
	docs := append([]*codec.Sample{}, a[4:16]...) // 12 good docs
	docs[7] = bad                                 // global index 7, inside batch 2
	for _, smp := range docs {
		ing.Add(smp)
	}
	sum, err := ing.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Inserted != 11 || sum.Failed != 1 {
		t.Fatalf("summary = %+v, want 11 inserted / 1 failed", sum)
	}
	if len(sum.DocErrors) != 1 || sum.DocErrors[0].Index != 7 {
		t.Fatalf("doc errors = %v, want exactly global index 7", sum.DocErrors)
	}
}

// TestStatsHistogramPercentiles: /statsz carries per-endpoint latency
// percentiles from the bucketed histogram, ordered p50 ≤ p95 ≤ p99 ≤ max.
func TestStatsHistogramPercentiles(t *testing.T) {
	_, client := startServer(t, ServerConfig{})
	a, _ := twoRegimes(26, 30)
	if _, err := client.IngestBatch("d", a); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := client.Certainty(a[:4], 0.5); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	ep := st.Endpoints["data.certainty"]
	if ep.Count != 20 {
		t.Fatalf("certainty count = %d, want 20", ep.Count)
	}
	if ep.P50MS <= 0 {
		t.Fatalf("p50 = %g, want > 0", ep.P50MS)
	}
	if ep.P50MS > ep.P95MS || ep.P95MS > ep.P99MS {
		t.Fatalf("percentiles out of order: p50=%g p95=%g p99=%g", ep.P50MS, ep.P95MS, ep.P99MS)
	}
	if ep.P99MS > ep.MaxMS*1.01 {
		t.Fatalf("p99 %g exceeds max %g", ep.P99MS, ep.MaxMS)
	}
	if ep.AverageMS <= 0 || ep.TotalMS <= 0 {
		t.Fatalf("avg/total not populated: %+v", ep)
	}
}
