package dmsapi

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fairdms/internal/docstore"
	"fairdms/internal/fairds"
	"fairdms/internal/obs"
)

// traceSink collects sampled client traces keyed by "METHOD /path".
type traceSink struct {
	mu  sync.Mutex
	got map[string][]obs.TraceDump
}

func (s *traceSink) add(op string, d obs.TraceDump) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.got == nil {
		s.got = make(map[string][]obs.TraceDump)
	}
	s.got[op] = append(s.got[op], d)
}

func (s *traceSink) last(op string) (obs.TraceDump, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds := s.got[op]
	if len(ds) == 0 {
		return obs.TraceDump{}, false
	}
	return ds[len(ds)-1], true
}

// spanIndex returns the index of the first span with the given name, or -1.
func spanIndex(d obs.TraceDump, name string) int {
	for i, sp := range d.Spans {
		if sp.Name == name {
			return i
		}
	}
	return -1
}

// hasAncestor reports whether walking parents from span i reaches span anc.
func hasAncestor(d obs.TraceDump, i, anc int) bool {
	for hops := 0; i >= 0 && hops <= len(d.Spans); hops++ {
		if i == anc {
			return true
		}
		i = d.Spans[i].Parent
	}
	return false
}

// TestTraceSpansThreeTiers runs the full deployment shape — a docstore TCP
// server, a dmsapi server using it through fairds.RemoteCollection, and a
// sampling client — and checks that one sampled request comes back as a
// single contiguous span tree: the client's spans, the server's grafted
// under the round trip, and the fairds stage spans under the server's
// request root.
func TestTraceSpansThreeTiers(t *testing.T) {
	dsrv := docstore.NewServer(docstore.NewStore(), docstore.ServerConfig{})
	daddr, err := dsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dsrv.Close() })
	dcl, err := docstore.Dial(daddr, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dcl.Close)
	svc, err := fairds.New(idEmbedder{dim: 6}, fairds.RemoteCollection{Client: dcl, Name: "peaks"}, fairds.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	srv, _ := startServer(t, ServerConfig{DS: svc})
	sink := &traceSink{}
	client, err := DialConfig(srv.Addr(), ClientConfig{TraceSample: 1, OnTrace: sink.add})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	a, _ := twoRegimes(5, 24)
	if _, err := client.Ingest("regime-a", a); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Nearest(a[:3], false); err != nil {
		t.Fatal(err)
	}

	// The ingest trace must reach the store round trip: the store_insert
	// stage runs inside fairds but spans the docstore TCP exchange.
	ingest, ok := sink.last("POST " + PathIngest)
	if !ok {
		t.Fatal("no trace sampled for ingest")
	}
	assertContiguous(t, "ingest", ingest)
	for _, name := range []string{"client_request", "http_roundtrip", "request", "embed", "store_insert"} {
		if spanIndex(ingest, name) < 0 {
			t.Errorf("ingest trace missing span %q (have %v)", name, ingest.SpanNames())
		}
	}

	nearest, ok := sink.last("POST " + PathNearest)
	if !ok {
		t.Fatal("no trace sampled for nearest")
	}
	assertContiguous(t, "nearest", nearest)
	// At least four named stages spanning client → server → fairds.
	want := []string{"client_request", "http_roundtrip", "request", "embed"}
	for _, name := range want {
		if spanIndex(nearest, name) < 0 {
			t.Errorf("nearest trace missing span %q (have %v)", name, nearest.SpanNames())
		}
	}
	if spanIndex(nearest, "index_probe") < 0 && spanIndex(nearest, "store_scan") < 0 {
		t.Errorf("nearest trace has neither index_probe nor store_scan: %v", nearest.SpanNames())
	}
	if n := len(nearest.SpanNames()); n < 4 {
		t.Fatalf("nearest trace has %d named stages, want >= 4: %v", n, nearest.SpanNames())
	}

	// Tier ordering: the server's request span hangs under the client's
	// round trip, and the fairds embed stage under the server's request.
	root, rt, req, emb := spanIndex(nearest, "client_request"),
		spanIndex(nearest, "http_roundtrip"), spanIndex(nearest, "request"), spanIndex(nearest, "embed")
	if !hasAncestor(nearest, rt, root) {
		t.Error("http_roundtrip is not under client_request")
	}
	if !hasAncestor(nearest, req, rt) {
		t.Error("server request span was not grafted under the client round trip")
	}
	if !hasAncestor(nearest, emb, req) {
		t.Error("fairds embed span is not under the server request span")
	}
}

// assertContiguous checks the dump is one tree: exactly one root and every
// parent index in range.
func assertContiguous(t *testing.T, label string, d obs.TraceDump) {
	t.Helper()
	roots := 0
	for i, sp := range d.Spans {
		switch {
		case sp.Parent == -1:
			roots++
		case sp.Parent < 0 || sp.Parent >= len(d.Spans):
			t.Fatalf("%s trace span %d (%s) has out-of-range parent %d", label, i, sp.Name, sp.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("%s trace has %d roots, want 1 contiguous tree: %+v", label, roots, d.Spans)
	}
}

// TestMetricszExposition scrapes /metricsz after live traffic and checks
// the response is valid Prometheus text carrying every /statsz counter
// family, including the per-endpoint vectors and (with training enabled)
// the trainer counters.
func TestMetricszExposition(t *testing.T) {
	srv, client := startServer(t, ServerConfig{TrainWorkers: 1})
	a, _ := twoRegimes(13, 24)
	if _, err := client.Ingest("regime-a", a); err != nil {
		t.Fatal(err)
	}
	pdf, err := client.PDF(a[:6])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Recommend(pdf, 0); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + srv.Addr() + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", PathMetrics, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q lacks exposition version", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	families, err := obs.ValidateExposition(body)
	if err != nil {
		t.Fatalf("invalid exposition:\n%s\nerror: %v", body, err)
	}

	// Every /statsz counter has a registry family (registerMetrics).
	want := []string{
		"dms_uptime_seconds", "dms_requests_total", "dms_shed_total",
		"dms_in_flight", "dms_cluster_k",
		"dms_cache_hits_total", "dms_cache_misses_total", "dms_cache_coalesced_total",
		"dms_cache_evictions_total", "dms_cache_size",
		"dms_index_ready", "dms_index_size", "dms_index_hits_total",
		"dms_index_misses_total", "dms_index_probed_total",
		"dms_index_lists_probed_total", "dms_index_corrupt_total",
		"dms_slow_requests_total",
		"dms_train_submitted_total", "dms_train_completed_total",
		"dms_train_failed_total", "dms_train_canceled_total",
		"dms_train_warm_starts_total", "dms_train_cold_starts_total",
		"dms_train_queue_depth", "dms_train_active",
		"dms_endpoint_errors_total", "dms_endpoint_latency_seconds",
	}
	for _, name := range want {
		if families[name] == 0 {
			t.Errorf("exposition missing family %s", name)
		}
	}

	// The scrape and /statsz read the same atomics: the requests counter
	// in the exposition must cover at least the requests /statsz saw when
	// the traffic above ran.
	var exported float64
	for _, line := range strings.Split(string(body), "\n") {
		if v, ok := strings.CutPrefix(line, "dms_requests_total "); ok {
			exported, err = strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				t.Fatalf("unparseable dms_requests_total sample %q", line)
			}
		}
	}
	if exported < 3 {
		t.Errorf("dms_requests_total = %v after >=3 requests", exported)
	}
	if got := srv.Stats().Requests; float64(got) < exported-1 { // scrape itself may add one
		t.Errorf("statsz requests %d disagrees with exposition %v", got, exported)
	}
}

// TestSlowzCapturesSlowRequests runs a server whose slow threshold is one
// nanosecond — everything is slow — and checks the ring serves entries with
// full span trees, slowest first.
func TestSlowzCapturesSlowRequests(t *testing.T) {
	srv, client := startServer(t, ServerConfig{SlowThreshold: time.Nanosecond, SlowLogSize: 8})
	a, _ := twoRegimes(17, 24)
	if _, err := client.Ingest("regime-a", a); err != nil {
		t.Fatal(err)
	}
	if _, err := client.PDF(a[:6]); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + srv.Addr() + PathSlow)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", PathSlow, resp.StatusCode)
	}
	var out SlowzResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ThresholdMS <= 0 {
		t.Errorf("threshold_ms = %v", out.ThresholdMS)
	}
	if out.Total < 2 || len(out.Entries) < 2 {
		t.Fatalf("slow ring total=%d entries=%d after 2+ requests", out.Total, len(out.Entries))
	}
	for i := 1; i < len(out.Entries); i++ {
		if out.Entries[i].DurMS > out.Entries[i-1].DurMS {
			t.Fatalf("entries not slowest-first: %v then %v",
				out.Entries[i-1].DurMS, out.Entries[i].DurMS)
		}
	}
	// Unsampled requests still retain their span trees — that is the point
	// of the always-on ring.
	seen := map[string]bool{}
	for _, e := range out.Entries {
		seen[e.Endpoint] = true
		if e.Endpoint == "data.ingest" && spanIndex(e.Trace, "embed") < 0 {
			t.Errorf("ingest slow entry lost its stage spans: %v", e.Trace.SpanNames())
		}
		if spanIndex(e.Trace, "request") < 0 {
			t.Errorf("slow entry %s has no request span: %v", e.Endpoint, e.Trace.SpanNames())
		}
	}
	if !seen["data.ingest"] {
		t.Errorf("slow ring never saw data.ingest: %v", seen)
	}
}

func TestSlowzDisabledIs404(t *testing.T) {
	srv, _ := startServer(t, ServerConfig{}) // no SlowThreshold
	resp, err := http.Get("http://" + srv.Addr() + PathSlow)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("slowz without a threshold: status %d, want 404", resp.StatusCode)
	}
}

// TestStatsBuildInfo checks /statsz identifies the running build and
// reports the tail percentile.
func TestStatsBuildInfo(t *testing.T) {
	_, client := startServer(t, ServerConfig{})
	for i := 0; i < 4; i++ {
		if _, err := client.Health(); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.GoVersion == "" || st.GoVersion == "unknown" {
		t.Errorf("go_version = %q", st.GoVersion)
	}
	if st.Version == "" || st.Revision == "" {
		t.Errorf("version %q / revision %q must at least be \"unknown\"", st.Version, st.Revision)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v", st.UptimeSeconds)
	}
	ep := st.Endpoints["healthz"]
	if ep.P999MS <= 0 || ep.P999MS < ep.P99MS {
		t.Errorf("healthz p999=%v p99=%v after %d requests", ep.P999MS, ep.P99MS, ep.Count)
	}
}
