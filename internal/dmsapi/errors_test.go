package dmsapi

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestEnvelopeRoundTrip pins the wire contract the router tier relies
// on: WriteError's envelope decodes back (via statusError, the client's
// decode path) into an identical *StatusError — status, code, message,
// and retryability all lossless, however many hops it crosses.
func TestEnvelopeRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		status int
		body   ErrorBody
		want   StatusError
	}{
		{
			name:   "409 not_fitted",
			status: http.StatusConflict,
			body:   ErrorBody{Code: CodeNotFitted, Message: "clustering model not fitted"},
			want:   StatusError{Code: 409, ErrCode: CodeNotFitted, Message: "clustering model not fitted"},
		},
		{
			name:   "429 overloaded retryable",
			status: http.StatusTooManyRequests,
			body:   ErrorBody{Code: CodeOverloaded, Message: "queue full", Retryable: true},
			want:   StatusError{Code: 429, ErrCode: CodeOverloaded, Message: "queue full", Retryable: true},
		},
		{
			name:   "503 degraded retryable",
			status: http.StatusServiceUnavailable,
			body:   ErrorBody{Code: CodeDegraded, Message: "all shards failed", Retryable: true},
			want:   StatusError{Code: 503, ErrCode: CodeDegraded, Message: "all shards failed", Retryable: true},
		},
		{
			// An empty code is filled from the status before it hits the wire.
			name:   "404 code derived from status",
			status: http.StatusNotFound,
			body:   ErrorBody{Message: "no such model"},
			want:   StatusError{Code: 404, ErrCode: CodeNotFound, Message: "no such model"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			WriteError(rec, tc.status, tc.body)
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("envelope content type %q", ct)
			}
			err := statusError(rec.Code, rec.Body.Bytes())
			var se *StatusError
			if !errors.As(err, &se) {
				t.Fatalf("decode produced %T", err)
			}
			if *se != tc.want {
				t.Fatalf("round trip changed the error:\n  wrote %+v\n  read  %+v", tc.want, *se)
			}
		})
	}
}

// TestWriteStatusErrorForwarding checks the router's forwarding path: a
// decoded shard *StatusError is re-written verbatim (even wrapped), and
// anything untyped collapses to 500/internal.
func TestWriteStatusErrorForwarding(t *testing.T) {
	orig := &StatusError{Code: 429, ErrCode: CodeOverloaded, Message: "shed", Retryable: true}
	rec := httptest.NewRecorder()
	WriteStatusError(rec, fmt.Errorf("shard 2: %w", orig))
	err := statusError(rec.Code, rec.Body.Bytes())
	var se *StatusError
	if !errors.As(err, &se) || *se != *orig {
		t.Fatalf("forwarded error mutated: %v", err)
	}

	rec = httptest.NewRecorder()
	WriteStatusError(rec, errors.New("disk on fire"))
	err = statusError(rec.Code, rec.Body.Bytes())
	if !errors.As(err, &se) || se.Code != 500 || se.ErrCode != CodeInternal || se.Retryable {
		t.Fatalf("untyped error not collapsed to 500/internal: %v", err)
	}
}

// TestStatusErrorLegacyDecode checks the client degrades cleanly against
// pre-envelope servers and non-dmsapi intermediaries: the flat
// {"error": "..."} shape and raw text bodies still decode, with code and
// retryability derived from the HTTP status.
func TestStatusErrorLegacyDecode(t *testing.T) {
	err := statusError(http.StatusConflict, []byte(`{"error":"model exists"}`))
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("legacy decode produced %T", err)
	}
	if se.ErrCode != CodeConflict || se.Message != "model exists" || se.Retryable {
		t.Fatalf("legacy flat decode: %+v", se)
	}

	err = statusError(http.StatusServiceUnavailable, []byte("upstream connect error\n"))
	if !errors.As(err, &se) {
		t.Fatalf("raw decode produced %T", err)
	}
	if se.ErrCode != CodeUnavailable || se.Message != "upstream connect error" || !se.Retryable {
		t.Fatalf("raw body decode: %+v", se)
	}
}

// TestStatusErrorSentinels checks errors.Is classification, including
// legacy responses that only carry a status.
func TestStatusErrorSentinels(t *testing.T) {
	cases := []struct {
		err      *StatusError
		sentinel error
	}{
		{&StatusError{Code: 404, ErrCode: CodeNotFound}, ErrNotFound},
		{&StatusError{Code: 409, ErrCode: CodeNotFitted}, ErrNotFitted},
		{&StatusError{Code: 409, ErrCode: CodeConflict}, ErrDuplicateModel},
		{&StatusError{Code: 429, ErrCode: CodeOverloaded}, ErrOverloaded},
		{&StatusError{Code: 503, ErrCode: CodeUnavailable}, ErrUnavailable},
		{&StatusError{Code: 503, ErrCode: CodeDegraded}, ErrUnavailable},
		// Legacy: status only, derived code.
		{&StatusError{Code: 404, ErrCode: CodeInternal}, ErrNotFound},
		{&StatusError{Code: 429, ErrCode: CodeInternal}, ErrOverloaded},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, tc.sentinel) {
			t.Errorf("%+v does not match %v", tc.err, tc.sentinel)
		}
	}
	if errors.Is(&StatusError{Code: 409, ErrCode: CodeNotFitted}, ErrDuplicateModel) {
		t.Error("not_fitted must not look like a duplicate-model conflict")
	}
}

// TestNewClientOptions covers the functional-option constructor: options
// compose over defaults, and the deprecated ClientConfig path still
// builds a working client.
func TestNewClientOptions(t *testing.T) {
	srv, _ := startServer(t, ServerConfig{})
	addr := srv.Addr()

	c, err := NewClient(addr,
		WithRetry(1, 5*time.Millisecond),
		WithTimeout(5*time.Second),
		WithPool(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// The deprecated struct path is still wired through.
	legacy, err := DialConfig(addr, ClientConfig{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(legacy.Close)
	if err := legacy.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestClientSeedFailover checks WithSeeds: a client dialed at a dead
// address rotates to a live seed on the transport failure and the
// request succeeds — the cluster-deployment story for surviving a dead
// router.
func TestClientSeedFailover(t *testing.T) {
	srv, _ := startServer(t, ServerConfig{})
	live := srv.Addr()

	// 127.0.0.1:1 refuses connections immediately; WithoutPing defers the
	// first contact to the request itself.
	c, err := NewClient("127.0.0.1:1",
		WithoutPing(),
		WithSeeds(live),
		WithRetry(2, time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	h, err := c.Health()
	if err != nil {
		t.Fatalf("seed failover did not recover the request: %v", err)
	}
	if h.Status == "" {
		t.Fatal("failover health response is empty")
	}
}
