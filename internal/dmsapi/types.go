// Package dmsapi exposes fairDMS's two services — the FAIR Data Service
// (internal/fairds) and the FAIR Model Service (internal/fairms) — over
// HTTP/JSON, the deployment shape the paper assumes: experimental-facility
// workflows call both services across the network to fetch PDF-matched
// labeled data and the closest prior checkpoint (Ali et al., Cluster 2022;
// Ravi et al., 2022). The package ships three pieces:
//
//   - typed request/response structs (this file) shared by client and
//     server, so the wire contract lives in one place;
//   - Server, a production-shaped HTTP front end with bounded in-flight
//     concurrency (429 shedding), singleflight coalescing plus a small LRU
//     for hot recommend/PDF queries, request/latency/cache counters on
//     /statsz, and graceful shutdown;
//   - Client, a typed Go client with connection reuse and
//     retry-on-connection-error.
//
// Checkpoints travel as gob-encoded nn.StateDict blobs (an octet-stream
// body on /v1/models/{id}/checkpoint), everything else as JSON.
package dmsapi

import (
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/obs"
	"fairdms/internal/trainer"
)

// API paths served by Server and called by Client.
const (
	PathIngest      = "/v1/data/ingest"
	PathIngestBatch = "/v1/data/ingest:batch"
	PathCertainty   = "/v1/data/certainty"
	PathLookup      = "/v1/data/lookup"
	PathNearest     = "/v1/data/nearest"
	PathPDF         = "/v1/data/pdf"
	PathFit         = "/v1/data/clusters:fit"
	PathSamples     = "/v1/data/samples"
	PathClusterIDs  = "/v1/data/ids"
	PathModels      = "/v1/models"
	PathRecommend   = "/v1/models/recommend"
	PathCheckpoint  = "/v1/models/{id}/checkpoint"
	PathTrain       = "/v1/train"
	PathTrainJob    = "/v1/train/{id}"
	PathTrainCancel = "/v1/train/{id}:cancel"
	PathHealth      = "/healthz"
	PathStats       = "/statsz"
	PathMetrics     = "/metricsz"
	PathSlow        = "/debug/slowz"
	PathTraces      = "/debug/tracez"
)

// Sample is the wire form of a codec.Sample. Data holds the little-endian
// element payload and rides JSON's native []byte base64 encoding.
type Sample struct {
	Shape []int     `json:"shape"`
	Dtype uint8     `json:"dtype"`
	Data  []byte    `json:"data"`
	Label []float64 `json:"label,omitempty"`
}

// FromCodec converts a codec.Sample to its wire form (sharing backing
// arrays; the caller must not mutate the original until the wire value is
// serialized).
func FromCodec(s *codec.Sample) Sample {
	return Sample{Shape: s.Shape, Dtype: uint8(s.Dtype), Data: s.Data, Label: s.Label}
}

// ToCodec converts a wire sample back to a codec.Sample.
func (s Sample) ToCodec() *codec.Sample {
	return &codec.Sample{Shape: s.Shape, Dtype: codec.Dtype(s.Dtype), Data: s.Data, Label: s.Label}
}

// FromCodecSlice converts a batch of codec samples to wire form.
func FromCodecSlice(ss []*codec.Sample) []Sample {
	out := make([]Sample, len(ss))
	for i, s := range ss {
		out[i] = FromCodec(s)
	}
	return out
}

// ToCodecSlice converts a batch of wire samples to codec form.
func ToCodecSlice(ss []Sample) []*codec.Sample {
	out := make([]*codec.Sample, len(ss))
	for i := range ss {
		out[i] = ss[i].ToCodec()
	}
	return out
}

// IngestRequest is the body of POST /v1/data/ingest: labeled samples to
// embed, cluster-assign, and store under a dataset tag.
type IngestRequest struct {
	Dataset string   `json:"dataset"`
	Samples []Sample `json:"samples"`
}

// IngestResponse returns the stored document IDs, in input order.
type IngestResponse struct {
	IDs []string `json:"ids"`
}

// IngestBatchRequest is the body of POST /v1/data/ingest:batch — the
// high-throughput ingest path. Unlike PathIngest, a malformed document
// fails only itself: the response carries a per-document error array and
// the rest of the batch commits.
type IngestBatchRequest struct {
	Dataset string   `json:"dataset"`
	Samples []Sample `json:"samples"`
}

// DocError reports one document of a batch that was rejected, by its
// position in the request.
type DocError struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// IngestBatchResponse returns per-document outcomes: IDs is aligned with
// the request batch ("" where the document failed), Errors lists the
// failures in ascending index order, and Inserted counts the commits.
type IngestBatchResponse struct {
	IDs      []string   `json:"ids"`
	Errors   []DocError `json:"errors,omitempty"`
	Inserted int        `json:"inserted"`
}

// CertaintyRequest is the body of POST /v1/data/certainty: the §III-I
// fuzzy-clustering certainty of a dataset at a membership threshold.
type CertaintyRequest struct {
	Samples   []Sample `json:"samples"`
	Threshold float64  `json:"threshold"`
}

// CertaintyResponse carries the certainty in [0, 1]. Degraded is set only
// by a cluster router: the value was computed without every shard's
// answer (the clustering model is replicated, so the value itself is
// still exact — the flag records reduced confirmation).
type CertaintyResponse struct {
	Certainty float64 `json:"certainty"`
	Degraded  bool    `json:"degraded,omitempty"`
}

// LookupRequest is the body of POST /v1/data/lookup: unlabeled samples for
// which PDF-matched labeled historical data should be retrieved.
type LookupRequest struct {
	Samples []Sample `json:"samples"`
}

// LookupResponse returns the retrieved labeled samples. Degraded is set
// only by a cluster router when one or more shards could not contribute
// candidates — the result is drawn from the surviving partitions.
type LookupResponse struct {
	Samples  []Sample `json:"samples"`
	Degraded bool     `json:"degraded,omitempty"`
}

// NearestRequest is the body of POST /v1/data/nearest: per-sample
// nearest-labeled-neighbor matching. With Distinct, each historical
// document is matched at most once (greedy, in input order). Exclude
// lists document IDs that must not be matched — the wire form of the
// in-process exclusion predicate, and what lets a cluster router resolve
// distinct matches across shards iteratively.
type NearestRequest struct {
	Samples  []Sample `json:"samples"`
	Distinct bool     `json:"distinct,omitempty"`
	Exclude  []string `json:"exclude,omitempty"`
}

// Match is one nearest-neighbor result. Found is false when the sample's
// cluster holds no eligible documents (Dist is meaningless then; the
// in-process API's +Inf does not survive JSON).
type Match struct {
	DocID string  `json:"doc_id,omitempty"`
	Dist  float64 `json:"dist"`
	Found bool    `json:"found"`
}

// NearestResponse returns one match per input sample, in order. Degraded
// is set only by a cluster router when a shard's candidates were missing
// from the merge — matches are then minima over the surviving shards.
type NearestResponse struct {
	Matches  []Match `json:"matches"`
	Degraded bool    `json:"degraded,omitempty"`
}

// PDFRequest is the body of POST /v1/data/pdf: compute the cluster
// probability distribution of a dataset — the signature fairMS indexes
// models by.
type PDFRequest struct {
	Samples []Sample `json:"samples"`
}

// PDFResponse carries the dataset PDF over the service's K clusters.
// Degraded mirrors CertaintyResponse.Degraded.
type PDFResponse struct {
	PDF      []float64 `json:"pdf"`
	K        int       `json:"k"`
	Degraded bool      `json:"degraded,omitempty"`
}

// FitRequest is the body of POST /v1/data/clusters:fit: explicitly fit
// the clustering model with K clusters on the given samples. A cluster
// router uses it to fit every shard on the same bootstrap batch, so the
// replicated models agree bit-for-bit (all shards sharing a seed).
// Fitting an already-fitted service is a no-op.
type FitRequest struct {
	Samples []Sample `json:"samples"`
	K       int      `json:"k"`
}

// FitResponse reports the service's cluster count after the call. Fitted
// is true when this request performed the fit (false: it was a no-op on
// an already-fitted service).
type FitResponse struct {
	K      int  `json:"k"`
	Fitted bool `json:"fitted"`
}

// SamplesRequest is the body of POST /v1/data/samples: fetch stored
// samples by document ID. With Partial, unknown IDs are reported in the
// response instead of failing the call.
type SamplesRequest struct {
	IDs     []string `json:"ids"`
	Partial bool     `json:"partial,omitempty"`
}

// SamplesResponse returns the fetched samples aligned with the request
// IDs that resolved (request order, misses skipped); Missing lists the
// IDs that did not resolve (Partial mode only).
type SamplesResponse struct {
	Samples []Sample `json:"samples"`
	Missing []string `json:"missing,omitempty"`
}

// ClusterIDsRequest is the body of POST /v1/data/ids: list the document
// IDs assigned to one cluster. The cluster router's lookup merge gathers
// per-shard candidate sets through this endpoint.
type ClusterIDsRequest struct {
	Cluster int `json:"cluster"`
}

// ClusterIDsResponse returns the cluster's document IDs, sorted.
type ClusterIDsResponse struct {
	IDs []string `json:"ids"`
}

// AddModelRequest is the body of POST /v1/models: register a checkpoint
// under ID with the PDF of its training data. State is a gob-encoded
// nn.StateDict (nn.StateDict.Bytes).
type AddModelRequest struct {
	ID    string            `json:"id"`
	PDF   []float64         `json:"pdf"`
	Meta  map[string]string `json:"meta,omitempty"`
	State []byte            `json:"state"`
}

// ModelInfo summarizes one zoo entry (no weights).
type ModelInfo struct {
	ID      string            `json:"id"`
	K       int               `json:"k"` // cluster count of the training PDF
	Meta    map[string]string `json:"meta,omitempty"`
	AddedAt time.Time         `json:"added_at"`
}

// ModelsResponse is the body of GET /v1/models: zoo entries in insertion
// order.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// RecommendRequest is the body of POST /v1/models/recommend. MaxJSD > 0
// applies the paper's distance threshold: a best model farther than MaxJSD
// yields OK=false (train from scratch). MaxJSD == 0 means no threshold.
type RecommendRequest struct {
	PDF    []float64 `json:"pdf"`
	MaxJSD float64   `json:"max_jsd,omitempty"`
}

// RecommendResponse names the best foundation model and its divergence.
// OK is false when the zoo holds no compatible model or the best one is
// beyond MaxJSD. Degraded is set only by a cluster router when not every
// zoo replica answered (the best model of the survivors is returned).
type RecommendResponse struct {
	ID       string  `json:"id,omitempty"`
	JSD      float64 `json:"jsd"`
	OK       bool    `json:"ok"`
	Degraded bool    `json:"degraded,omitempty"`
}

// TrainRequest is the body of POST /v1/train: submit an asynchronous
// server-side training job (the paper's rapid-train action run inside the
// daemon). Exactly one data source is used: inline Samples win over a
// Dataset tag naming already-ingested samples. Zero values pick the
// trainer's defaults; MaxJSD < 0 forces a cold start.
type TrainRequest struct {
	Dataset     string            `json:"dataset,omitempty"`
	Samples     []Sample          `json:"samples,omitempty"`
	Model       string            `json:"model,omitempty"` // "braggnn" (default) or "mlp"
	Hidden      int               `json:"hidden,omitempty"`
	Epochs      int               `json:"epochs,omitempty"`
	BatchSize   int               `json:"batch_size,omitempty"`
	LR          float64           `json:"lr,omitempty"`
	TargetLoss  float64           `json:"target_loss,omitempty"`
	Patience    int               `json:"patience,omitempty"`
	MaxJSD      float64           `json:"max_jsd,omitempty"`
	ValFraction float64           `json:"val_fraction,omitempty"`
	Seed        int64             `json:"seed,omitempty"`
	ModelID     string            `json:"model_id,omitempty"`
	Meta        map[string]string `json:"meta,omitempty"`
}

// TrainJob is the wire form of a training job's status: the body of the
// submit and cancel responses, GET /v1/train/{id} (with loss curves), and
// the list entries of GET /v1/train (curves omitted to bound the payload).
type TrainJob struct {
	ID      string `json:"id"`
	State   string `json:"state"` // queued | running | done | failed | canceled
	Model   string `json:"model"`
	Dataset string `json:"dataset,omitempty"`
	Samples int    `json:"samples"`

	Warm       bool    `json:"warm"`
	Foundation string  `json:"foundation,omitempty"`
	JSD        float64 `json:"jsd"`

	Epochs      int       `json:"epochs"`
	Converged   bool      `json:"converged"`
	ConvergedAt int       `json:"converged_at,omitempty"`
	TrainLoss   []float64 `json:"train_loss,omitempty"`
	ValLoss     []float64 `json:"val_loss,omitempty"`

	ModelID string `json:"model_id,omitempty"`
	Error   string `json:"error,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

// Terminal reports whether the job has reached an end state (delegating
// to the trainer's state machine, the source of truth for state names).
func (j *TrainJob) Terminal() bool {
	return trainer.State(j.State).Terminal()
}

// TrainListResponse is the body of GET /v1/train: every job in submission
// order, loss curves omitted.
type TrainListResponse struct {
	Jobs []TrainJob `json:"jobs"`
}

// TrainStats reports the training subsystem's gauges: pool geometry,
// live queue depth and active jobs, and lifetime submitted/completed/
// failed/canceled plus warm-vs-cold start counts. It aliases
// trainer.Stats — the json tags live there — so a gauge added to the
// trainer reaches /statsz without a hand-kept mirror drifting.
type TrainStats = trainer.Stats

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status  string `json:"status"`
	K       int    `json:"k"`       // fitted cluster count (0 = awaiting bootstrap)
	Models  int    `json:"models"`  // zoo entries
	Samples int    `json:"samples"` // labeled samples in the data store
}

// Stats is the body of GET /statsz: a point-in-time snapshot of server
// counters. The full schema is documented in docs/ARCHITECTURE.md; the
// same counters are exported in Prometheus text form at /metricsz.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// GoVersion/Version/Revision identify the running build (from
	// runtime/debug.ReadBuildInfo): the Go toolchain, the main-module
	// version, and the VCS revision when the binary was built from a
	// checkout. "unknown" when the build carries no such metadata (e.g.
	// go test binaries).
	GoVersion string     `json:"go_version"`
	Version   string     `json:"version"`
	Revision  string     `json:"revision"`
	InFlight  int        `json:"in_flight"`
	Shed      int64      `json:"shed"` // 429s returned
	Requests  int64      `json:"requests"`
	Cache     CacheStats `json:"cache"`
	Index     IndexStats `json:"index"`
	// Train is present when the server embeds the training subsystem
	// (ServerConfig.TrainWorkers > 0).
	Train *TrainStats `json:"train,omitempty"`
	// Wal is present when the server fronts a WAL-durable document store
	// (ServerConfig.WalStats hook installed).
	Wal       *WalStats                `json:"wal,omitempty"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

// WalStats reports the durability plane of a WAL-backed document store:
// append/sync volume on the write path, replay/truncation counters from
// the last recovery, and compaction progress (the wire form of
// docstore.WalStats). TornTruncations and CorruptRecords count tails the
// replayer cut off — nonzero after an unclean shutdown is expected,
// growth during steady state is not.
type WalStats struct {
	Enabled          bool   `json:"enabled"`
	Policy           string `json:"policy"` // fsync policy: always | interval | off
	Appends          int64  `json:"appends"`
	AppendedBytes    int64  `json:"appended_bytes"`
	Syncs            int64  `json:"syncs"`
	Replays          int64  `json:"replays"`
	ReplayedRecords  int64  `json:"replayed_records"`
	ReplayedTxns     int64  `json:"replayed_txns"`
	ReplaySkippedOps int64  `json:"replay_skipped_ops"`
	TornTruncations  int64  `json:"torn_truncations"`
	CorruptRecords   int64  `json:"corrupt_records"`
	Rotations        int64  `json:"rotations"`
	Compactions      int64  `json:"compactions"`
	SegmentsRemoved  int64  `json:"segments_removed"`
}

// IndexStats reports the data service's vector-index coverage and
// effectiveness (the wire form of fairds.IndexStats). Hits are
// nearest-label queries answered by the in-process index, Misses fell back
// to a store scan, and Corrupt counts observations of stored documents
// whose embedding or cluster fields were unusable (a cold service
// re-observes the same document on every scan).
type IndexStats struct {
	Enabled     bool  `json:"enabled"`
	Ready       bool  `json:"ready"`
	Size        int   `json:"size"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Probed      int64 `json:"probed"`
	ListsProbed int64 `json:"lists_probed"`
	Corrupt     int64 `json:"corrupt"`
}

// CacheStats reports coalescing-cache effectiveness.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"` // callers that piggybacked on an in-flight compute
	Size      int   `json:"size"`
	Evictions int64 `json:"evictions"`
}

// EndpointStats reports per-endpoint request counters plus streaming
// latency percentiles from a lock-free bucketed histogram (~3% resolution).
// The histogram is recorded into by every in-flight request and snapshotted
// with atomic loads, so /statsz never stalls the request path.
type EndpointStats struct {
	Count     int64   `json:"count"`
	Errors    int64   `json:"errors"`
	TotalMS   float64 `json:"total_ms"`
	MaxMS     float64 `json:"max_ms"`
	AverageMS float64 `json:"avg_ms"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	P99MS     float64 `json:"p99_ms"`
	P999MS    float64 `json:"p999_ms"`
}

// SlowzResponse is the body of GET /debug/slowz: the retained
// slow-request ring (slowest first), each entry carrying its full span
// tree. 404 when the server runs without a slow threshold.
type SlowzResponse struct {
	ThresholdMS float64         `json:"threshold_ms"`
	Total       int64           `json:"total"` // requests over threshold since start
	Entries     []obs.SlowEntry `json:"entries"`
}
