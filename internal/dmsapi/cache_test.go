package dmsapi

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheHitAndEviction(t *testing.T) {
	c := newCache(2)
	compute := func(v string) func(context.Context) (any, error) {
		return func(context.Context) (any, error) { return v, nil }
	}
	for _, k := range []string{"a", "b", "a", "c"} {
		if v, err := c.do(context.Background(), k, compute(k)); err != nil || v != k {
			t.Fatalf("do(%s) = %v, %v", k, v, err)
		}
	}
	// "a" was most recently used before "c" arrived, so "b" was evicted.
	st := c.stats()
	if st.Hits != 1 || st.Misses != 3 || st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v", st)
	}
	calls := 0
	c.do(context.Background(), "b", func(context.Context) (any, error) { calls++; return "b", nil })
	if calls != 1 {
		t.Fatal("evicted key should recompute")
	}
	// Re-adding "b" evicted "a"; "c" is still retained.
	c.do(context.Background(), "c", func(context.Context) (any, error) { calls++; return "", nil })
	if calls != 1 {
		t.Fatal("retained key should not recompute")
	}
}

func TestCacheCoalescesConcurrentCalls(t *testing.T) {
	c := newCache(4)
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]any, 10)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.do(context.Background(), "hot", func(context.Context) (any, error) {
				computes.Add(1)
				close(started)
				<-release // hold the computation open so others pile up
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	<-started
	time.Sleep(20 * time.Millisecond) // let the rest reach the coalesce path
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times for one hot key", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	st := c.stats()
	if st.Coalesced+st.Hits != 9 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheErrorsAreNotCached(t *testing.T) {
	c := newCache(4)
	calls := 0
	fail := func(context.Context) (any, error) { calls++; return nil, errors.New("boom") }
	if _, err := c.do(context.Background(), "k", fail); err == nil {
		t.Fatal("expected error")
	}
	if _, err := c.do(context.Background(), "k", fail); err == nil {
		t.Fatal("expected error again")
	}
	if calls != 2 {
		t.Fatalf("failed compute was cached (calls = %d)", calls)
	}
	if c.len() != 0 {
		t.Fatal("error result retained")
	}
}

// TestCachePanicDoesNotPoisonKey checks panic safety: a panicking compute
// must not leave the key's in-flight entry registered (which would block
// every later caller forever).
func TestCachePanicDoesNotPoisonKey(t *testing.T) {
	c := newCache(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.do(context.Background(), "k", func(context.Context) (any, error) { panic("boom") })
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := c.do(context.Background(), "k", func(context.Context) (any, error) { return 7, nil })
		if err != nil || v != 7 {
			t.Errorf("do after panic = %v, %v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("key poisoned: second caller blocked after a panicking compute")
	}
}

func TestCacheZeroCapacityCoalescesOnly(t *testing.T) {
	c := newCache(0)
	calls := 0
	compute := func(context.Context) (any, error) { calls++; return 1, nil }
	c.do(context.Background(), "k", compute)
	c.do(context.Background(), "k", compute)
	if calls != 2 {
		t.Fatalf("zero-capacity cache memoized (calls = %d)", calls)
	}
	if st := c.stats(); st.Size != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
