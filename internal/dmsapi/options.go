package dmsapi

import (
	"time"

	"fairdms/internal/obs"
)

// Option tunes a Client built by NewClient. Options replace the older
// ClientConfig struct: they compose, keep zero-value defaults in one
// place, and extend without breaking call sites (WithSeeds arrived for
// the cluster tier without touching any existing constructor call).
type Option func(*clientOptions)

// clientOptions is the resolved option set; NewClient applies defaults
// first, then the caller's options in order (later options win).
type clientOptions struct {
	retries     int
	backoff     time.Duration
	timeout     time.Duration
	poolSize    int
	traceSample int
	onTrace     func(op string, dump obs.TraceDump)
	seeds       []string
	ping        bool
}

func defaultOptions() clientOptions {
	return clientOptions{
		retries:  2,
		backoff:  50 * time.Millisecond,
		timeout:  30 * time.Second,
		poolSize: 32,
		ping:     true,
	}
}

// WithRetry sets the number of extra attempts after a transport-level
// failure and the base backoff delay (multiplied by the attempt number).
// retries 0 disables retrying; backoff <= 0 keeps the default 50ms.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(o *clientOptions) {
		o.retries = retries
		if backoff > 0 {
			o.backoff = backoff
		}
	}
}

// WithTimeout bounds each HTTP request end to end.
func WithTimeout(d time.Duration) Option {
	return func(o *clientOptions) {
		if d > 0 {
			o.timeout = d
		}
	}
}

// WithPool sets the keep-alive connection pool size (idle connections
// retained, total and per host). Larger pools help many-goroutine
// closed-loop workloads; the default is 32.
func WithPool(n int) Option {
	return func(o *clientOptions) {
		if n > 0 {
			o.poolSize = n
		}
	}
}

// WithTraceSample traces every nth request end to end and hands the
// merged client+server span tree to onTrace (see ClientConfig.TraceSample
// for the wire mechanics). n <= 0 or a nil onTrace disables sampling.
func WithTraceSample(n int, onTrace func(op string, dump obs.TraceDump)) Option {
	return func(o *clientOptions) {
		o.traceSample = n
		o.onTrace = onTrace
	}
}

// WithSeeds adds fallback server addresses ("host:port"). The client
// talks to one server at a time and rotates to the next seed on a
// transport-level failure, so a cluster deployment can list every router
// (or every shard of a replicated tier) and survive any one of them
// dying. The dial address is always the first candidate.
func WithSeeds(addrs ...string) Option {
	return func(o *clientOptions) { o.seeds = append(o.seeds, addrs...) }
}

// WithoutPing skips the constructor's /healthz probe, letting a client be
// built for a server that is still starting (the cluster tier constructs
// per-shard clients before the shards are necessarily up).
func WithoutPing() Option {
	return func(o *clientOptions) { o.ping = false }
}

// NewClient builds a client for the server at addr ("host:port"),
// applying opts over the defaults (2 retries, 50ms backoff, 30s timeout,
// 32-connection pool), and probes /healthz so misconfiguration fails
// fast (disable with WithoutPing). It supersedes Dial/DialConfig.
func NewClient(addr string, opts ...Option) (*Client, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return newClient(addr, o)
}
