package dmsapi

import (
	"errors"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/fairms"
)

// trainFeatures must divide cleanly into idEmbedder's chunking (dim 6).
const trainFeatures = 12

// trainMeanSamples builds labeled samples whose label is the feature
// mean — a regression problem a small MLP learns quickly, keeping the
// end-to-end training tests fast and deterministic.
func trainMeanSamples(seed int64, n int) []*codec.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*codec.Sample, n)
	for i := range out {
		vals := make([]float64, trainFeatures)
		sum := 0.0
		for j := range vals {
			vals[j] = rng.Float64()
			sum += vals[j]
		}
		out[i] = codec.SampleFromFloats(vals, []int{trainFeatures}, codec.F64,
			[]float64{sum / trainFeatures})
	}
	return out
}

func trainRequest(modelID string) TrainRequest {
	return TrainRequest{
		Dataset:    "scan-00",
		Model:      "mlp",
		Hidden:     16,
		Epochs:     400,
		BatchSize:  16,
		LR:         0.01,
		TargetLoss: 5e-3,
		Seed:       7,
		ModelID:    modelID,
	}
}

// TestTrainEndToEnd is the PR's acceptance scenario over live TCP: a
// client ingests a dataset, submits a cold training job against its tag,
// then runs RapidTrain on the same data — which warm-starts from the
// first job's checkpoint, converges in fewer epochs (Figs. 13–14),
// registers with parent lineage, and surfaces in the /statsz train block.
func TestTrainEndToEnd(t *testing.T) {
	zoo := fairms.NewZoo()
	_, client := startServer(t, ServerConfig{Zoo: zoo, TrainWorkers: 2})

	if _, err := client.Ingest("scan-00", trainMeanSamples(1, 80)); err != nil {
		t.Fatal(err)
	}

	// Cold start: the zoo is empty, so no foundation exists.
	job, err := client.SubmitTrain(trainRequest("cold-model"))
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "queued" && job.State != "running" {
		t.Fatalf("fresh job state %q", job.State)
	}
	cold, err := client.WaitTrain(job.ID, 20*time.Millisecond, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if cold.State != "done" {
		t.Fatalf("cold job ended %s: %s", cold.State, cold.Error)
	}
	if cold.Warm {
		t.Fatal("cold job warm-started against an empty zoo")
	}
	if !cold.Converged || cold.Epochs < 2 {
		t.Fatalf("cold job: converged=%v epochs=%d", cold.Converged, cold.Epochs)
	}
	if cold.Samples != 80 || cold.Dataset != "scan-00" {
		t.Fatalf("cold job resolved %d samples from %q", cold.Samples, cold.Dataset)
	}
	if len(cold.TrainLoss) != cold.Epochs || len(cold.ValLoss) != cold.Epochs {
		t.Fatalf("detail view curves (%d, %d) vs %d epochs",
			len(cold.TrainLoss), len(cold.ValLoss), cold.Epochs)
	}

	// Warm start via the Fig. 5 convenience: submit, wait, download.
	warm, sd, err := client.RapidTrain(trainRequest("warm-model"), 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Warm || warm.Foundation != "cold-model" {
		t.Fatalf("RapidTrain should warm-start from cold-model: warm=%v foundation=%q",
			warm.Warm, warm.Foundation)
	}
	if !warm.Converged || warm.Epochs >= cold.Epochs {
		t.Fatalf("warm-start epochs %d should undercut cold %d", warm.Epochs, cold.Epochs)
	}
	if sd == nil || len(sd.Values) == 0 {
		t.Fatal("RapidTrain returned no checkpoint")
	}

	// Lineage landed in the zoo.
	rec, err := zoo.Get("warm-model")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Parent() != "cold-model" || !rec.WarmStarted() {
		t.Fatalf("warm lineage: %+v", rec.Meta)
	}
	if n, ok := rec.Epochs(); !ok || n != warm.Epochs {
		t.Fatalf("lineage epochs %d/%v, want %d", n, ok, warm.Epochs)
	}

	// The list view carries both jobs, curves omitted.
	jobs, err := client.TrainJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("listed %d jobs, want 2", len(jobs))
	}
	for _, j := range jobs {
		if len(j.TrainLoss) != 0 || len(j.ValLoss) != 0 {
			t.Fatalf("list view leaked loss curves for %s", j.ID)
		}
	}

	// /statsz surfaces the train gauges.
	st, err := client.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Train == nil {
		t.Fatal("/statsz has no train block with training enabled")
	}
	if st.Train.Submitted != 2 || st.Train.Completed != 2 ||
		st.Train.WarmStarts != 1 || st.Train.ColdStarts != 1 {
		t.Fatalf("train gauges %+v", st.Train)
	}
	if st.Train.Workers != 2 {
		t.Fatalf("train workers %d, want 2", st.Train.Workers)
	}
}

// TestTrainQueueSaturationAndCancel fills the single worker and the
// single queue slot, asserts the next submission is shed with 429, then
// cancels both jobs over HTTP and sees them stop promptly.
func TestTrainQueueSaturationAndCancel(t *testing.T) {
	_, client := startServer(t, ServerConfig{TrainWorkers: 1, TrainQueue: 1})
	if _, err := client.Ingest("scan-00", trainMeanSamples(2, 64)); err != nil {
		t.Fatal(err)
	}

	// A job that runs until canceled: huge epoch budget, no target loss.
	longReq := TrainRequest{
		Dataset:   "scan-00",
		Model:     "mlp",
		Hidden:    16,
		Epochs:    10_000_000,
		BatchSize: 4,
		Seed:      3,
	}
	running, err := client.SubmitTrain(longReq)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := client.TrainJob(running.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started: %s", running.ID, j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	queued, err := client.SubmitTrain(longReq)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.SubmitTrain(longReq)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("third submit should shed with 429, got %v", err)
	}

	st, err := client.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Train == nil || st.Train.QueueDepth != 1 || st.Train.Active != 1 {
		t.Fatalf("train gauges under saturation: %+v", st.Train)
	}

	for _, id := range []string{queued.ID, running.ID} {
		if _, err := client.CancelTrain(id); err != nil {
			t.Fatal(err)
		}
		final, err := client.WaitTrain(id, 10*time.Millisecond, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != "canceled" {
			t.Fatalf("job %s ended %s after cancel", id, final.State)
		}
		if final.ModelID != "" {
			t.Fatalf("canceled job %s registered %s", id, final.ModelID)
		}
	}
}

// TestTrainRejections covers the synchronous error mapping: 409 before
// the bootstrap fit, 404 for unknown jobs and malformed actions, 400 for
// bad specs, and 404s when training is disabled.
func TestTrainRejections(t *testing.T) {
	_, client := startServer(t, ServerConfig{TrainWorkers: 1})

	// No ingest yet: clustering unfitted, so submissions conflict.
	_, err := client.SubmitTrain(TrainRequest{Dataset: "scan-00", Model: "mlp"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("pre-bootstrap submit: want 409, got %v", err)
	}

	if _, err := client.Ingest("scan-00", trainMeanSamples(3, 32)); err != nil {
		t.Fatal(err)
	}
	if _, err = client.SubmitTrain(TrainRequest{Dataset: "scan-00", Model: "transformer"}); !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("unknown model: want 400, got %v", err)
	}
	if _, err = client.TrainJob("job-404404"); !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("unknown job: want 404, got %v", err)
	}
	if _, err = client.CancelTrain("job-404404"); !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("cancel unknown job: want 404, got %v", err)
	}
	// POST /v1/train/{id} without the :cancel action is not a route.
	if err = client.postJSON("/v1/train/job-000001", struct{}{}, &TrainJob{}); !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("actionless POST: want 404, got %v", err)
	}

	// A server without TrainWorkers has no training plane at all.
	_, disabled := startServer(t, ServerConfig{})
	if _, err := disabled.SubmitTrain(TrainRequest{Dataset: "scan-00", Model: "mlp"}); !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("disabled training: want 404, got %v", err)
	}
	stats, err := disabled.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Train != nil {
		t.Fatal("/statsz train block present with training disabled")
	}
}
