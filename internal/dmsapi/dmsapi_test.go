package dmsapi

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/datagen"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
	"fairdms/internal/nn"
	"fairdms/internal/stats"
	"fairdms/internal/tensor"
)

// idEmbedder embeds images by pooled statistics — deterministic and
// training-free, keeping tests focused on the API layer.
type idEmbedder struct{ dim int }

func (e idEmbedder) Dim() int { return e.dim }
func (e idEmbedder) Embed(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Dim(0), e.dim)
	feats := x.Dim(1)
	chunk := (feats + e.dim - 1) / e.dim
	for i := 0; i < x.Dim(0); i++ {
		row := x.Row(i)
		for d := 0; d < e.dim; d++ {
			lo := d * chunk
			hi := min(lo+chunk, feats)
			s := 0.0
			for _, v := range row[lo:hi] {
				s += v
			}
			if hi > lo {
				out.Set(s/float64(hi-lo), i, d)
			}
		}
	}
	return out
}

var _ embed.Embedder = idEmbedder{}

// twoRegimes returns labeled samples from two visually distinct regimes.
func twoRegimes(seed int64, n int) (a, b []*codec.Sample) {
	rng := rand.New(rand.NewSource(seed))
	ra := datagen.DefaultBraggRegime()
	ra.Patch = 11
	rb := ra
	rb.WidthMean = 4.0
	rb.AmpMean = 25
	return ra.Generate(rng, n), rb.Generate(rng, n)
}

func newDataService(t *testing.T) *fairds.Service {
	t.Helper()
	store := docstore.NewStore().Collection("peaks")
	svc, err := fairds.New(idEmbedder{dim: 6}, store, fairds.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// startServer boots a Server over real TCP and dials a Client at it.
func startServer(t *testing.T, cfg ServerConfig) (*Server, *Client) {
	t.Helper()
	if cfg.DS == nil {
		cfg.DS = newDataService(t)
	}
	if cfg.Zoo == nil {
		cfg.Zoo = fairms.NewZoo()
	}
	if cfg.BootstrapK == 0 {
		cfg.BootstrapK = 4
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	return srv, client
}

func dummyState(seed int64) *nn.StateDict {
	rng := rand.New(rand.NewSource(seed))
	return nn.Sequential(nn.NewLinear(rng, 3, 2)).State()
}

// TestEndToEndOverTCP exercises the acceptance path: a client ingests
// labeled samples into a fresh daemon-shaped server (bootstrap fit
// included), gets a recommendation for new data, and downloads the
// recommended checkpoint — all over a real TCP connection.
func TestEndToEndOverTCP(t *testing.T) {
	srv, client := startServer(t, ServerConfig{})
	a, b := twoRegimes(7, 40)

	// Ingest bootstrap-fits the clustering module, then stores the batch.
	ids, err := client.Ingest("regime-a", a)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(a) {
		t.Fatalf("ingest returned %d ids for %d samples", len(ids), len(a))
	}
	h, err := client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.K == 0 || h.Samples != len(a) {
		t.Fatalf("health after ingest: %+v", h)
	}

	// Data-plane lookups.
	pdf, err := client.PDF(a[:10])
	if err != nil {
		t.Fatal(err)
	}
	if len(pdf) != h.K {
		t.Fatalf("pdf has %d bins, k = %d", len(pdf), h.K)
	}
	if err := pdf.Validate(); err != nil {
		t.Fatalf("pdf not a distribution: %v", err)
	}
	cert, err := client.Certainty(a[:10], 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if cert < 0 || cert > 1 {
		t.Fatalf("certainty = %g", cert)
	}
	labeled, err := client.Lookup(b[:8])
	if err != nil {
		t.Fatal(err)
	}
	if len(labeled) == 0 {
		t.Fatal("lookup returned no labeled samples")
	}
	for _, s := range labeled {
		if len(s.Label) == 0 {
			t.Fatal("retrieved sample lost its label on the wire")
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("retrieved sample corrupt: %v", err)
		}
	}
	matches, err := client.Nearest(a[:5], true)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 5 {
		t.Fatalf("nearest returned %d matches", len(matches))
	}
	seen := map[string]bool{}
	for _, m := range matches {
		if !m.Found {
			t.Fatalf("no match found: %+v", matches)
		}
		if seen[m.DocID] {
			t.Fatalf("distinct matching reused doc %s", m.DocID)
		}
		seen[m.DocID] = true
	}

	// Model plane: register a checkpoint, recommend it, download it.
	rng := rand.New(rand.NewSource(3))
	trained := nn.Sequential(nn.NewLinear(rng, 3, 2))
	if err := client.AddModel("m-a", trained.State(), pdf, map[string]string{"regime": "a"}); err != nil {
		t.Fatal(err)
	}
	models, err := client.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].ID != "m-a" || models[0].Meta["regime"] != "a" {
		t.Fatalf("models = %+v", models)
	}
	rec, err := client.Recommend(pdf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.OK || rec.ID != "m-a" || rec.JSD != 0 {
		t.Fatalf("recommend = %+v", rec)
	}
	sd, err := client.Checkpoint(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	fresh := nn.Sequential(nn.NewLinear(rand.New(rand.NewSource(99)), 3, 2))
	if err := fresh.LoadState(sd); err != nil {
		t.Fatalf("downloaded checkpoint does not load: %v", err)
	}
	got, want := fresh.Params()[0].Value.Data(), trained.Params()[0].Value.Data()
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("checkpoint weights corrupted in transit")
		}
	}

	if n := srv.Requests(); n == 0 {
		t.Fatal("server counted no requests")
	}
}

func TestLookupBeforeBootstrapIsConflict(t *testing.T) {
	_, client := startServer(t, ServerConfig{BootstrapK: -1}) // no bootstrap
	a, _ := twoRegimes(8, 6)
	_, err := client.PDF(a)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("expected 409 before clusters are fitted, got %v", err)
	}
}

func TestRecommendThresholdAndEmptyZoo(t *testing.T) {
	_, client := startServer(t, ServerConfig{})
	rec, err := client.Recommend(stats.PDF{0.5, 0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.OK {
		t.Fatalf("empty zoo recommended %+v", rec)
	}
	if err := client.AddModel("far", dummyState(1), stats.PDF{0.02, 0.98}, nil); err != nil {
		t.Fatal(err)
	}
	rec, err = client.Recommend(stats.PDF{0.98, 0.02}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.OK {
		t.Fatalf("threshold should have rejected the distant model: %+v", rec)
	}
	rec, err = client.Recommend(stats.PDF{0.98, 0.02}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.OK || rec.ID != "far" {
		t.Fatalf("unthresholded recommend = %+v", rec)
	}
}

func TestCheckpointNotFound(t *testing.T) {
	_, client := startServer(t, ServerConfig{})
	_, err := client.Checkpoint("nope")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("expected 404, got %v", err)
	}
}

func TestDuplicateModelIsConflict(t *testing.T) {
	_, client := startServer(t, ServerConfig{})
	if err := client.AddModel("m", dummyState(1), stats.PDF{1}, nil); err != nil {
		t.Fatal(err)
	}
	err := client.AddModel("m", dummyState(2), stats.PDF{1}, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusConflict {
		t.Fatalf("expected 409 for duplicate id, got %v", err)
	}
}

// TestMalformedSamplesAreBadRequest feeds samples whose payload disagrees
// with their shape/dtype — untrusted input must become a 400, not a panic
// inside codec.Sample.Floats.
func TestMalformedSamplesAreBadRequest(t *testing.T) {
	_, client := startServer(t, ServerConfig{})
	bad := []struct {
		name   string
		sample Sample
	}{
		{"short payload", Sample{Shape: []int{4}, Dtype: 1, Data: []byte{1}}},
		{"unknown dtype", Sample{Shape: []int{1}, Dtype: 99, Data: []byte{1}}},
		{"empty shape product", Sample{Shape: []int{0}, Dtype: 1, Data: nil}},
	}
	for _, tc := range bad {
		wire := []Sample{tc.sample}
		for path, req := range map[string]any{
			PathPDF:       PDFRequest{Samples: wire},
			PathIngest:    IngestRequest{Dataset: "d", Samples: wire},
			PathCertainty: CertaintyRequest{Samples: wire},
			PathLookup:    LookupRequest{Samples: wire},
			PathNearest:   NearestRequest{Samples: wire},
		} {
			var out map[string]any
			err := client.postJSON(path, req, &out)
			var se *StatusError
			if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
				t.Errorf("%s with %s: want 400, got %v", path, tc.name, err)
			}
		}
	}
	// The server must still be healthy (no wedged cache slots or panics).
	if _, err := client.Health(); err != nil {
		t.Fatalf("server unhealthy after malformed input: %v", err)
	}
}

func TestAddModelInvalidPDFIsBadRequest(t *testing.T) {
	_, client := startServer(t, ServerConfig{})
	err := client.AddModel("m", dummyState(1), stats.PDF{0.7, 0.7}, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("expected 400 for invalid PDF, got %v", err)
	}
}

func TestMalformedJSONIsBadRequest(t *testing.T) {
	srv, _ := startServer(t, ServerConfig{})
	resp, err := http.Post("http://"+srv.Addr()+PathRecommend, "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

// TestSheddingReturns429 fills the admission semaphore and checks that
// service endpoints shed while health stays reachable.
func TestSheddingReturns429(t *testing.T) {
	srv, client := startServer(t, ServerConfig{MaxInFlight: 2})
	// Occupy both slots directly (white-box): requests must now shed.
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	defer func() { <-srv.sem; <-srv.sem }()

	_, err := client.Recommend(stats.PDF{1}, 0)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("expected 429 when saturated, got %v", err)
	}
	if srv.Shed() == 0 {
		t.Fatal("shed counter not incremented")
	}
	// Health is exempt from shedding.
	if _, err := client.Health(); err != nil {
		t.Fatalf("healthz shed: %v", err)
	}
}

// TestRecommendCaching checks the LRU + generation-invalidation behavior
// through the HTTP path: repeat queries hit, zoo changes invalidate.
func TestRecommendCaching(t *testing.T) {
	srv, client := startServer(t, ServerConfig{})
	if err := client.AddModel("m1", dummyState(1), stats.PDF{0.5, 0.5}, nil); err != nil {
		t.Fatal(err)
	}
	query := stats.PDF{0.6, 0.4}
	if _, err := client.Recommend(query, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Recommend(query, 0); err != nil {
		t.Fatal(err)
	}
	cs := srv.Stats().Cache
	if cs.Hits < 1 {
		t.Fatalf("repeat query did not hit the cache: %+v", cs)
	}
	missesBefore := cs.Misses

	// Adding a model bumps the zoo generation: the cached recommendation
	// is stale and must be recomputed.
	if err := client.AddModel("m2", dummyState(2), stats.PDF{0.6, 0.4}, nil); err != nil {
		t.Fatal(err)
	}
	rec, err := client.Recommend(query, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != "m2" {
		t.Fatalf("stale recommendation served after zoo change: %+v", rec)
	}
	if srv.Stats().Cache.Misses != missesBefore+1 {
		t.Fatalf("expected a fresh compute after invalidation: %+v", srv.Stats().Cache)
	}
}

// TestConcurrentClients hammers one server with mixed operations from many
// goroutines — run under -race this is the API layer's thread-safety test.
func TestConcurrentClients(t *testing.T) {
	srv, client := startServer(t, ServerConfig{})
	a, b := twoRegimes(9, 30)
	if _, err := client.Ingest("seed", a); err != nil {
		t.Fatal(err)
	}
	pdf, err := client.PDF(a[:5])
	if err != nil {
		t.Fatal(err)
	}
	if err := client.AddModel("base", dummyState(1), pdf, nil); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*16)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				switch i % 5 {
				case 0:
					if _, err := client.Ingest(fmt.Sprintf("w%d-%d", w, i), b[:3]); err != nil {
						errs <- err
					}
				case 1:
					if _, err := client.PDF(a[:5]); err != nil {
						errs <- err
					}
				case 2:
					if _, err := client.Recommend(pdf, 0); err != nil {
						errs <- err
					}
				case 3:
					if _, err := client.Lookup(b[:4]); err != nil {
						errs <- err
					}
				case 4:
					id := fmt.Sprintf("m-w%d-%d", w, i)
					if err := client.AddModel(id, dummyState(int64(w*100+i)), pdf, nil); err != nil {
						errs <- err
					}
					if _, err := client.Checkpoint(id); err != nil {
						errs <- err
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent op failed: %v", err)
	}
	if srv.Shed() > 0 {
		t.Fatalf("default in-flight bound shed %d requests under modest load", srv.Shed())
	}
}

// TestClientRetriesConnectionError routes the client through a proxy that
// kills the first connection before responding: the retry layer must
// transparently recover.
func TestClientRetriesConnectionError(t *testing.T) {
	srv, _ := startServer(t, ServerConfig{})

	proxy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	var once sync.Once
	go func() {
		for {
			conn, err := proxy.Accept()
			if err != nil {
				return
			}
			killed := false
			once.Do(func() {
				conn.Close() // first connection dies before any response
				killed = true
			})
			if killed {
				continue
			}
			back, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				conn.Close()
				continue
			}
			go func() { io.Copy(back, conn); back.Close() }()
			go func() { io.Copy(conn, back); conn.Close() }()
		}
	}()

	client, err := Dial(proxy.Addr().String())
	if err != nil {
		t.Fatalf("dial through flaky proxy should retry and succeed: %v", err)
	}
	defer client.Close()
	if _, err := client.Health(); err != nil {
		t.Fatal(err)
	}
}

func TestGracefulShutdown(t *testing.T) {
	srv, client := startServer(t, ServerConfig{})
	if _, err := client.Health(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if err := client.Ping(); err == nil {
		t.Fatal("server still answering after shutdown")
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, client := startServer(t, ServerConfig{})
	if _, err := client.Health(); err != nil {
		t.Fatal(err)
	}
	st, err := client.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 || st.Endpoints["healthz"].Count == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestStatsReportsVectorIndex checks that /statsz surfaces the data
// service's vector-index counters: after an ingest and a nearest query,
// the index must be enabled, ready, sized to the store, and credited with
// the query.
func TestStatsReportsVectorIndex(t *testing.T) {
	_, client := startServer(t, ServerConfig{})
	a, _ := twoRegimes(21, 32)
	if _, err := client.Ingest("regime-a", a); err != nil {
		t.Fatal(err)
	}
	matches, err := client.Nearest(a[:4], false)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 4 || !matches[0].Found {
		t.Fatalf("nearest = %+v", matches)
	}
	st, err := client.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	idx := st.Index
	if !idx.Enabled || !idx.Ready {
		t.Fatalf("index should be enabled and ready: %+v", idx)
	}
	if idx.Size != len(a) {
		t.Fatalf("index size = %d, want %d", idx.Size, len(a))
	}
	if idx.Hits == 0 || idx.Misses != 0 || idx.Probed == 0 {
		t.Fatalf("nearest query should have hit the index: %+v", idx)
	}
	if idx.Corrupt != 0 {
		t.Fatalf("unexpected corrupt count: %+v", idx)
	}
}

// TestWireSampleRoundTrip pins the Sample wire conversion.
func TestWireSampleRoundTrip(t *testing.T) {
	a, _ := twoRegimes(11, 1)
	got := FromCodec(a[0]).ToCodec()
	if got.Dtype != a[0].Dtype || got.Elems() != a[0].Elems() {
		t.Fatalf("round trip changed shape/dtype: %+v vs %+v", got, a[0])
	}
	if len(got.Label) != len(a[0].Label) {
		t.Fatal("round trip dropped label")
	}
}
