package dmsapi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fairdms/internal/codec"
)

// BatchIngesterConfig tunes a BatchIngester. The zero value picks sensible
// defaults.
type BatchIngesterConfig struct {
	// BatchSize is the number of documents per ingest:batch request
	// (default 256). Keep it at or below the server's MaxBatchDocs cap.
	BatchSize int
	// MaxInFlight bounds concurrently outstanding batch requests (default
	// 4). Add blocks once the bound is reached, so a producer that outruns
	// the server backs off instead of growing an unbounded send queue.
	MaxInFlight int
}

func (c *BatchIngesterConfig) defaults() {
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
}

// BatchIngester accumulates samples and ships them to the batch-ingest
// endpoint in fixed-size batches with a bounded number of batches in
// flight — the client half of the high-throughput ingest path, shaped for
// the paper's streaming-frames workload: the producer keeps Add()ing while
// up to MaxInFlight HTTP requests overlap. Add and Flush may be called
// from multiple goroutines. Close flushes the remainder and reports the
// aggregate outcome.
type BatchIngester struct {
	c       *Client
	dataset string
	cfg     BatchIngesterConfig

	sem chan struct{} // in-flight bound
	wg  sync.WaitGroup

	mu   sync.Mutex
	buf  []*codec.Sample
	base int // global index of buf[0]

	inserted atomic.Int64
	failed   atomic.Int64
	batches  atomic.Int64

	errMu    sync.Mutex
	docErrs  []DocError // indices are global Add-order positions
	reqErrs  []error
	maxErrs  int
	dropErrs int64
}

// NewBatchIngester builds a BatchIngester writing to dataset through this
// client.
func (c *Client) NewBatchIngester(dataset string, cfg BatchIngesterConfig) *BatchIngester {
	cfg.defaults()
	return &BatchIngester{
		c:       c,
		dataset: dataset,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		maxErrs: 1024,
	}
}

// Add buffers one sample, dispatching a batch request when BatchSize is
// reached. It blocks while MaxInFlight batches are already outstanding.
func (b *BatchIngester) Add(s *codec.Sample) {
	b.mu.Lock()
	b.buf = append(b.buf, s)
	if len(b.buf) < b.cfg.BatchSize {
		b.mu.Unlock()
		return
	}
	batch, base := b.buf, b.base
	b.buf = nil
	b.base += len(batch)
	b.mu.Unlock()
	b.dispatch(batch, base)
}

// Flush dispatches any buffered partial batch without waiting for it to
// complete.
func (b *BatchIngester) Flush() {
	b.mu.Lock()
	batch, base := b.buf, b.base
	b.buf = nil
	b.base += len(batch)
	b.mu.Unlock()
	if len(batch) > 0 {
		b.dispatch(batch, base)
	}
}

// dispatch sends one batch asynchronously, bounded by the in-flight
// semaphore (acquired on the caller's goroutine, which is what makes Add
// block when the pipeline is full).
func (b *BatchIngester) dispatch(batch []*codec.Sample, base int) {
	b.batches.Add(1)
	b.sem <- struct{}{}
	b.wg.Add(1)
	go func() {
		defer func() { <-b.sem; b.wg.Done() }()
		resp, err := b.c.IngestBatch(b.dataset, batch)
		if err != nil {
			b.failed.Add(int64(len(batch)))
			b.noteErr(fmt.Errorf("dmsapi: batch at offset %d (%d docs): %w", base, len(batch), err))
			return
		}
		b.inserted.Add(int64(resp.Inserted))
		b.failed.Add(int64(len(batch) - resp.Inserted))
		for _, de := range resp.Errors {
			b.noteDocErr(DocError{Index: base + de.Index, Error: de.Error})
		}
	}()
}

func (b *BatchIngester) noteErr(err error) {
	b.errMu.Lock()
	defer b.errMu.Unlock()
	if len(b.reqErrs) >= b.maxErrs {
		b.dropErrs++
		return
	}
	b.reqErrs = append(b.reqErrs, err)
}

func (b *BatchIngester) noteDocErr(de DocError) {
	b.errMu.Lock()
	defer b.errMu.Unlock()
	if len(b.docErrs) >= b.maxErrs {
		b.dropErrs++
		return
	}
	b.docErrs = append(b.docErrs, de)
}

// BatchIngestSummary is the aggregate outcome of a BatchIngester run.
type BatchIngestSummary struct {
	// Added is how many samples passed through Add.
	Added int
	// Inserted is how many the server committed.
	Inserted int
	// Failed is Added − Inserted: per-doc rejections plus every document of
	// batches whose request failed outright.
	Failed int
	// DocErrors lists per-document rejections (Index is the global
	// Add-order position). RequestErrors lists failed batch requests. Both
	// are capped at 1024 entries; Truncated counts the overflow.
	DocErrors     []DocError
	RequestErrors []error
	Truncated     int64
}

// Close flushes the remainder, waits for every in-flight batch, and
// returns the aggregate outcome. The error is non-nil if any batch request
// failed outright (its documents are also counted in Failed). The
// ingester must not be used after Close.
func (b *BatchIngester) Close() (BatchIngestSummary, error) {
	b.Flush()
	b.wg.Wait()
	b.errMu.Lock()
	defer b.errMu.Unlock()
	sum := BatchIngestSummary{
		Inserted:      int(b.inserted.Load()),
		Failed:        int(b.failed.Load()),
		DocErrors:     b.docErrs,
		RequestErrors: b.reqErrs,
		Truncated:     b.dropErrs,
	}
	sum.Added = sum.Inserted + sum.Failed
	var err error
	if len(b.reqErrs) > 0 {
		err = fmt.Errorf("dmsapi: %d of %d batch requests failed, first: %w",
			len(b.reqErrs), b.batches.Load(), b.reqErrs[0])
	}
	return sum, err
}
