package dmsapi

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"fairdms/internal/obs"
)

// cache is a singleflight-coalescing LRU. Many concurrent training jobs
// ask the service the same question at the same moment (the same dataset
// PDF, the same recommend query), so the cache serves three roles:
//
//  1. duplicate suppression: a key already being computed is computed once;
//     latecomers block on the in-flight call and share its result
//     (singleflight),
//  2. memoization: completed results are kept in a bounded LRU so repeat
//     queries skip the compute entirely,
//  3. observability: hit/miss/coalesce/eviction counters feed /statsz.
//
// A capacity of zero disables memoization but keeps coalescing — in-flight
// duplicates still collapse to one compute, results just aren't retained.
type cache struct {
	cap int

	mu    sync.Mutex
	ll    *list.List               // guarded by mu; front = most recently used
	items map[string]*list.Element // guarded by mu; key → element whose Value is *entry
	calls map[string]*call         // guarded by mu; in-flight computations

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
}

type entry struct {
	key string
	val any
}

// call is one in-flight computation; done is closed when val/err are set.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// newCache returns a cache retaining up to capacity completed results.
func newCache(capacity int) *cache {
	if capacity < 0 {
		capacity = 0
	}
	return &cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		calls: make(map[string]*call),
	}
}

// do returns the cached value for key, joins an in-flight computation for
// key, or runs fn and caches its result. Errors are never cached: a failed
// compute is retried by the next caller. The whole lookup — hit, coalesced
// wait, or compute — is recorded as a cache_lookup span on ctx's trace, so
// a slow cached endpoint shows whether it waited on someone else's compute
// or ran its own (the compute's stages appear as child spans).
func (c *cache) do(ctx context.Context, key string, fn func(ctx context.Context) (any, error)) (any, error) {
	ctx, span := obs.StartSpan(ctx, "cache_lookup")
	defer span.End()
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*entry).val
		c.mu.Unlock()
		c.hits.Add(1)
		return val, nil
	}
	if cl, ok := c.calls[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-cl.done
		return cl.val, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.calls[key] = cl
	c.mu.Unlock()
	c.misses.Add(1)

	// The deferred cleanup runs even if fn panics: the in-flight entry is
	// removed and done is closed (coalesced waiters see errPanicked rather
	// than blocking forever), then the panic resumes up the handler stack.
	defer func() {
		c.mu.Lock()
		delete(c.calls, key)
		if cl.err == nil && c.cap > 0 {
			c.items[key] = c.ll.PushFront(&entry{key: key, val: cl.val})
			for c.ll.Len() > c.cap {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				delete(c.items, oldest.Value.(*entry).key)
				c.evictions.Add(1)
			}
		}
		c.mu.Unlock()
		close(cl.done)
	}()
	cl.err = errPanicked // overwritten on normal return
	cl.val, cl.err = fn(ctx)
	return cl.val, cl.err
}

// errPanicked is what coalesced waiters observe when the computation they
// joined panicked instead of returning.
var errPanicked = errors.New("dmsapi: coalesced computation panicked")

// len reports the number of retained results.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// stats snapshots the counters.
func (c *cache) stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Size:      c.len(),
		Evictions: c.evictions.Load(),
	}
}
