package dmsapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// ErrorCode is the machine-readable class of an API error, carried in the
// error envelope of every non-2xx /v1 response. Codes are coarser than
// HTTP statuses where statuses overload meanings (409 covers both "model
// ID taken" and "service not fitted") and stable across transport hops:
// a router forwarding a shard's error preserves the code verbatim.
type ErrorCode string

const (
	CodeBadRequest  ErrorCode = "bad_request" // malformed input (400)
	CodeNotFound    ErrorCode = "not_found"   // no such model/job/route (404)
	CodeConflict    ErrorCode = "conflict"    // duplicate model ID (409)
	CodeNotFitted   ErrorCode = "not_fitted"  // clustering model awaits bootstrap (409)
	CodeTooLarge    ErrorCode = "too_large"   // body or batch over the cap (413)
	CodeOverloaded  ErrorCode = "overloaded"  // admission or queue shed (429)
	CodeInternal    ErrorCode = "internal"    // server-side failure (500)
	CodeUnavailable ErrorCode = "unavailable" // shutting down, or no healthy shard (503)
	CodeDegraded    ErrorCode = "degraded"    // cluster read lost every shard (503)
)

// ErrorBody is the payload of the unified error envelope. Retryable tells
// the caller whether the same request may succeed later without
// modification (shed, saturation, unavailability) — it travels on the
// wire so a multi-hop deployment keeps the origin's judgment.
type ErrorBody struct {
	Code      ErrorCode `json:"code"`
	Message   string    `json:"message"`
	Retryable bool      `json:"retryable"`
}

// ErrorResponse is the JSON body of every non-2xx response:
// {"error": {"code", "message", "retryable"}}.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// Typed sentinels for errors.Is against client-side errors. A
// *StatusError matches the sentinel its envelope code (or, for legacy
// plain responses, its HTTP status) implies.
var (
	// ErrNotFound: the named model, job, or route does not exist.
	ErrNotFound = errors.New("dmsapi: not found")
	// ErrNotFitted: the data service awaits its bootstrap clustering fit.
	ErrNotFitted = errors.New("dmsapi: clustering model not fitted")
	// ErrDuplicateModel: the model ID is already registered.
	ErrDuplicateModel = errors.New("dmsapi: duplicate model id")
	// ErrOverloaded: the server shed the request (admission or queue).
	ErrOverloaded = errors.New("dmsapi: server overloaded")
	// ErrUnavailable: the server (or every shard behind a router) cannot
	// serve the request right now.
	ErrUnavailable = errors.New("dmsapi: service unavailable")
)

// StatusError is the typed form of a non-2xx server response. Code is the
// HTTP status; ErrCode and Retryable are decoded from the error envelope
// (derived from the status for legacy plain-text/flat-JSON bodies). It
// matches the package sentinels under errors.Is, so callers branch on
// error classes without status-code arithmetic.
type StatusError struct {
	Code      int
	ErrCode   ErrorCode
	Message   string
	Retryable bool
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("dmsapi: server returned %d (%s): %s", e.Code, e.ErrCode, e.Message)
}

// Is maps the error onto the package sentinels: errors.Is(err,
// dmsapi.ErrOverloaded) is true for any 429/overloaded response however
// many router hops it crossed.
func (e *StatusError) Is(target error) bool {
	switch target {
	case ErrNotFound:
		return e.ErrCode == CodeNotFound || e.Code == http.StatusNotFound
	case ErrNotFitted:
		return e.ErrCode == CodeNotFitted
	case ErrDuplicateModel:
		return e.ErrCode == CodeConflict
	case ErrOverloaded:
		return e.ErrCode == CodeOverloaded || e.Code == http.StatusTooManyRequests
	case ErrUnavailable:
		return e.ErrCode == CodeUnavailable || e.ErrCode == CodeDegraded ||
			e.Code == http.StatusServiceUnavailable
	}
	return false
}

// codeForStatus derives the envelope code from an HTTP status — the
// fallback for handlers (and upstream bodies) that didn't pick a more
// specific one.
func codeForStatus(status int) ErrorCode {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	case http.StatusTooManyRequests:
		return CodeOverloaded
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	default:
		return CodeInternal
	}
}

// retryableStatus reports whether a status class is worth retrying
// unmodified: shed (429) and unavailability (502/503/504) are transient,
// everything else is the request's own fault or a deterministic failure.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// WriteError writes the unified error envelope. An empty body.Code is
// filled from the status. This is the one place a non-2xx status is
// written (the errboundary analyzer enforces that); the router calls it
// with a shard's decoded envelope so 409/429/503 round-trip losslessly.
func WriteError(w http.ResponseWriter, status int, body ErrorBody) {
	if body.Code == "" {
		body.Code = codeForStatus(status)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: body})
}

// WriteStatusError writes err as an envelope response. A *StatusError —
// typically a shard response a router is forwarding — keeps its status,
// code, and retryability verbatim; anything else becomes a 500/internal.
func WriteStatusError(w http.ResponseWriter, err error) {
	var se *StatusError
	if errors.As(err, &se) {
		WriteError(w, se.Code, ErrorBody{Code: se.ErrCode, Message: se.Message, Retryable: se.Retryable})
		return
	}
	WriteError(w, http.StatusInternalServerError, ErrorBody{Code: CodeInternal, Message: err.Error()})
}

// statusError decodes a non-2xx response body into a *StatusError:
// envelope first, then the pre-envelope flat {"error": "..."} shape, then
// the raw body — so the client degrades cleanly against older servers and
// non-dmsapi intermediaries.
func statusError(status int, body []byte) error {
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err == nil && er.Error.Message != "" {
		return &StatusError{
			Code:      status,
			ErrCode:   er.Error.Code,
			Message:   er.Error.Message,
			Retryable: er.Error.Retryable,
		}
	}
	msg := ""
	var legacy struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &legacy); err == nil {
		msg = legacy.Error
	}
	if msg == "" {
		msg = strings.TrimSpace(string(body))
	}
	return &StatusError{
		Code:      status,
		ErrCode:   codeForStatus(status),
		Message:   msg,
		Retryable: retryableStatus(status),
	}
}
