package dmsapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/nn"
	"fairdms/internal/obs"
	"fairdms/internal/stats"
)

// Client is a typed HTTP client for a dmsapi.Server. It reuses pooled
// keep-alive connections (many requests share a handful of TCP streams, the
// docstore client-pool idea applied to HTTP) and retries requests that
// failed at the transport level — connection refused/reset, broken
// keep-alive — with linear backoff. HTTP-level errors (4xx/5xx) are never
// retried: the server answered, the answer was no. Note the retry semantics
// for Ingest/AddModel: a response lost after the server committed the write
// can surface a duplicate-side effect on retry; the server's duplicate-ID
// rejection on AddModel makes that visible rather than silent. Safe for
// concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration

	sample  int
	onTrace func(op string, dump obs.TraceDump)
	nreq    atomic.Uint64
}

// ClientConfig tunes a Client.
type ClientConfig struct {
	// Retries is the number of extra attempts after a transport-level
	// failure (default 2).
	Retries int
	// Backoff is the base retry delay, multiplied by the attempt number
	// (default 50ms).
	Backoff time.Duration
	// Timeout bounds each HTTP request end to end (default 30s).
	Timeout time.Duration
	// TraceSample, when > 0 with OnTrace set, traces every Nth request end
	// to end: the client builds a span tree around the exchange, asks the
	// server for its span tree back (X-Dms-Trace request header, span
	// trailer on the response), and grafts the server's tree under the
	// round-trip span — one contiguous view from client_request down to the
	// fairds stages. Zero disables sampling.
	TraceSample int
	// OnTrace receives each sampled request's merged span tree; op is
	// "METHOD /path". Called synchronously on the requesting goroutine
	// after the response is consumed, so keep it cheap.
	OnTrace func(op string, dump obs.TraceDump)
}

func (c *ClientConfig) defaults() {
	if c.Retries <= 0 {
		c.Retries = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
}

// Dial builds a client for the server at addr ("host:port") and probes
// /healthz so misconfiguration fails fast.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig is Dial with explicit tuning.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	cfg.defaults()
	c := &Client{
		base:    "http://" + addr,
		retries: cfg.Retries,
		backoff: cfg.Backoff,
		sample:  cfg.TraceSample,
		onTrace: cfg.OnTrace,
		hc: &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        32,
				MaxIdleConnsPerHost: 32,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	if err := c.Ping(); err != nil {
		return nil, fmt.Errorf("dmsapi: dial %s: %w", addr, err)
	}
	return c, nil
}

// Ping verifies the server answers /healthz.
func (c *Client) Ping() error {
	_, err := c.Health()
	return err
}

// Health fetches the server's health summary.
func (c *Client) Health() (HealthResponse, error) {
	var out HealthResponse
	err := c.getJSON(PathHealth, &out)
	return out, err
}

// ServerStats fetches the server's /statsz counters.
func (c *Client) ServerStats() (Stats, error) {
	var out Stats
	err := c.getJSON(PathStats, &out)
	return out, err
}

// Close releases idle keep-alive connections.
func (c *Client) Close() { c.hc.CloseIdleConnections() }

// ---------------------------------------------------------------------------
// Data plane

// Ingest stores labeled samples under a dataset tag, returning document IDs.
func (c *Client) Ingest(dataset string, samples []*codec.Sample) ([]string, error) {
	var out IngestResponse
	err := c.postJSON(PathIngest, IngestRequest{Dataset: dataset, Samples: FromCodecSlice(samples)}, &out)
	return out.IDs, err
}

// IngestBatch stores labeled samples through the high-throughput batch
// endpoint. Per-document failures come back in the response's Errors array
// rather than failing the call; the returned error covers only
// request-level problems (transport failure after retries, 4xx/5xx).
// For streaming many batches with bounded in-flight concurrency, see
// NewBatchIngester.
func (c *Client) IngestBatch(dataset string, samples []*codec.Sample) (IngestBatchResponse, error) {
	var out IngestBatchResponse
	err := c.postJSON(PathIngestBatch, IngestBatchRequest{Dataset: dataset, Samples: FromCodecSlice(samples)}, &out)
	return out, err
}

// Certainty returns the fuzzy-clustering certainty of a dataset at the
// given membership threshold (<= 0 uses the server default of 0.5).
func (c *Client) Certainty(samples []*codec.Sample, threshold float64) (float64, error) {
	var out CertaintyResponse
	err := c.postJSON(PathCertainty, CertaintyRequest{Samples: FromCodecSlice(samples), Threshold: threshold}, &out)
	return out.Certainty, err
}

// Lookup retrieves PDF-matched labeled historical samples for the input.
func (c *Client) Lookup(samples []*codec.Sample) ([]*codec.Sample, error) {
	var out LookupResponse
	if err := c.postJSON(PathLookup, LookupRequest{Samples: FromCodecSlice(samples)}, &out); err != nil {
		return nil, err
	}
	return ToCodecSlice(out.Samples), nil
}

// Nearest returns the nearest labeled historical document per input sample.
func (c *Client) Nearest(samples []*codec.Sample, distinct bool) ([]Match, error) {
	var out NearestResponse
	err := c.postJSON(PathNearest, NearestRequest{Samples: FromCodecSlice(samples), Distinct: distinct}, &out)
	return out.Matches, err
}

// PDF computes the dataset's cluster probability distribution.
func (c *Client) PDF(samples []*codec.Sample) (stats.PDF, error) {
	var out PDFResponse
	if err := c.postJSON(PathPDF, PDFRequest{Samples: FromCodecSlice(samples)}, &out); err != nil {
		return nil, err
	}
	return stats.PDF(out.PDF), nil
}

// ---------------------------------------------------------------------------
// Model plane

// AddModel registers a checkpoint with the PDF of its training data.
func (c *Client) AddModel(id string, state *nn.StateDict, pdf stats.PDF, meta map[string]string) error {
	blob, err := state.Bytes()
	if err != nil {
		return err
	}
	var out ModelInfo
	return c.postJSON(PathModels, AddModelRequest{ID: id, PDF: pdf, Meta: meta, State: blob}, &out)
}

// Models lists zoo entries in insertion order (no weights).
func (c *Client) Models() ([]ModelInfo, error) {
	var out ModelsResponse
	err := c.getJSON(PathModels, &out)
	return out.Models, err
}

// Recommend asks for the best foundation model for a dataset PDF. With
// maxJSD > 0 the paper's distance threshold applies; OK=false means train
// from scratch.
func (c *Client) Recommend(pdf stats.PDF, maxJSD float64) (RecommendResponse, error) {
	var out RecommendResponse
	err := c.postJSON(PathRecommend, RecommendRequest{PDF: pdf, MaxJSD: maxJSD}, &out)
	return out, err
}

// Checkpoint downloads and decodes a model's weights.
func (c *Client) Checkpoint(id string) (*nn.StateDict, error) {
	body, err := c.doRetry("GET", strings.Replace(PathCheckpoint, "{id}", url.PathEscape(id), 1), nil)
	if err != nil {
		return nil, err
	}
	return nn.StateDictFromBytes(body)
}

// ---------------------------------------------------------------------------
// Training plane

// SubmitTrain submits an asynchronous server-side training job and
// returns its initial status. A saturated job queue surfaces as a
// StatusError with code 429.
func (c *Client) SubmitTrain(req TrainRequest) (TrainJob, error) {
	var out TrainJob
	err := c.postJSON(PathTrain, req, &out)
	return out, err
}

// TrainJobs lists every training job in submission order (without loss
// curves; fetch a single job for those).
func (c *Client) TrainJobs() ([]TrainJob, error) {
	var out TrainListResponse
	err := c.getJSON(PathTrain, &out)
	return out.Jobs, err
}

// TrainJob fetches one job's full status, including live loss curves.
func (c *Client) TrainJob(id string) (TrainJob, error) {
	var out TrainJob
	err := c.getJSON(strings.Replace(PathTrainJob, "{id}", url.PathEscape(id), 1), &out)
	return out, err
}

// CancelTrain requests cancellation of a job and returns its status
// (already-terminal jobs come back unchanged).
func (c *Client) CancelTrain(id string) (TrainJob, error) {
	var out TrainJob
	err := c.postJSON(strings.Replace(PathTrainCancel, "{id}", url.PathEscape(id), 1), struct{}{}, &out)
	return out, err
}

// WaitTrain polls a job until it reaches a terminal state or timeout
// elapses (poll <= 0 uses 100ms). A 429 on a status poll means the
// server shed the read under load, not that the job failed — the poll
// just retries until the deadline.
func (c *Client) WaitTrain(id string, poll, timeout time.Duration) (TrainJob, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for {
		job, err := c.TrainJob(id)
		if err != nil {
			var se *StatusError
			if errors.As(err, &se) && se.Code == http.StatusTooManyRequests && time.Now().Before(deadline) {
				time.Sleep(poll)
				continue
			}
			return job, err
		}
		if job.Terminal() {
			return job, nil
		}
		if time.Now().After(deadline) {
			return job, fmt.Errorf("dmsapi: train job %s still %s after %v", id, job.State, timeout)
		}
		time.Sleep(poll)
	}
}

// RapidTrain runs the paper's Fig. 5 rapid-train action server-side:
// submit the job (the daemon computes the PDF, picks the closest zoo
// checkpoint under the JSD threshold, and warm-starts — or cold-starts —
// training), wait for it to finish, and download the resulting
// checkpoint. The returned TrainJob carries the warm/cold decision,
// foundation lineage, and loss curves.
func (c *Client) RapidTrain(req TrainRequest, timeout time.Duration) (TrainJob, *nn.StateDict, error) {
	job, err := c.SubmitTrain(req)
	if err != nil {
		return job, nil, err
	}
	job, err = c.WaitTrain(job.ID, 0, timeout)
	if err != nil {
		return job, nil, err
	}
	if job.State != "done" {
		return job, nil, fmt.Errorf("dmsapi: train job %s ended %s: %s", job.ID, job.State, job.Error)
	}
	sd, err := c.Checkpoint(job.ModelID)
	if err != nil {
		return job, nil, fmt.Errorf("dmsapi: downloading trained checkpoint %s: %w", job.ModelID, err)
	}
	return job, sd, nil
}

// ---------------------------------------------------------------------------
// Transport

func (c *Client) postJSON(path string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("dmsapi: encoding request: %w", err)
	}
	body, err := c.doRetry("POST", path, payload)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, out)
}

func (c *Client) getJSON(path string, out any) error {
	body, err := c.doRetry("GET", path, nil)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, out)
}

// doRetry performs one HTTP exchange, retrying transport-level failures.
// The request body is a byte slice (not a stream) precisely so each retry
// can resend it from the start.
//
// When this request is the Nth of a TraceSample cadence, the exchange is
// traced: a client_request root with one http_roundtrip span per attempt,
// and — when the server returns its span tree on the response trailer —
// the server tree grafted under the successful attempt. The merged dump
// goes to OnTrace whatever the outcome, so failed exchanges are visible
// too (just without a server subtree).
func (c *Client) doRetry(method, path string, payload []byte) ([]byte, error) {
	var (
		tr   *obs.Trace
		root *obs.Span
		ctx  = context.Background()

		serverDump obs.TraceDump
		graftAt    = -1
		haveServer bool
	)
	if c.sample > 0 && c.onTrace != nil && c.nreq.Add(1)%uint64(c.sample) == 0 {
		tr = obs.NewTrace("", true)
		ctx = obs.NewContext(ctx, tr)
		ctx, root = obs.StartSpan(ctx, "client_request")
		defer func() {
			root.End()
			dump := tr.Dump()
			if haveServer {
				dump = obs.Graft(dump, graftAt, serverDump)
			}
			c.onTrace(method+" "+path, dump)
		}()
	}

	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * c.backoff)
		}
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, c.base+path, body)
		if err != nil {
			return nil, err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if tr != nil {
			req.Header.Set(obs.TraceHeader, obs.FormatTraceHeader(tr.ID(), true))
		}
		_, att := obs.StartSpan(ctx, "http_roundtrip")
		resp, err := c.hc.Do(req)
		if err != nil {
			att.End()
			lastErr = err // transport-level: connection refused/reset, timeout
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		att.End()
		if err != nil {
			lastErr = err // response truncated mid-stream
			continue
		}
		// Trailers are populated only once the body is fully consumed; a
		// missing or malformed trailer (fixed-length responses drop it)
		// just means no server subtree.
		if tr != nil {
			if d, ok := obs.DecodeDump(resp.Trailer.Get(obs.SpanHeader)); ok {
				serverDump, graftAt, haveServer = d, att.Index(), true
			}
		}
		if resp.StatusCode/100 != 2 {
			return nil, statusError(resp.StatusCode, data)
		}
		return data, nil
	}
	return nil, fmt.Errorf("dmsapi: %s %s failed after %d attempts: %w", method, path, c.retries+1, lastErr)
}

// StatusError is the typed form of a non-2xx server response.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("dmsapi: server returned %d: %s", e.Code, e.Message)
}

func statusError(code int, body []byte) error {
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		er.Error = strings.TrimSpace(string(body))
	}
	return &StatusError{Code: code, Message: er.Error}
}
