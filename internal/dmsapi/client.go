package dmsapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/nn"
	"fairdms/internal/obs"
	"fairdms/internal/stats"
)

// Client is a typed HTTP client for a dmsapi.Server (or a dmsrouter
// fronting many of them). It reuses pooled keep-alive connections (many
// requests share a handful of TCP streams, the docstore client-pool idea
// applied to HTTP) and retries requests that failed at the transport
// level — connection refused/reset, broken keep-alive — with linear
// backoff, rotating through the WithSeeds fallback addresses when more
// than one server is known. HTTP-level errors (4xx/5xx) are never
// retried: the server answered, the answer was no. Note the retry
// semantics for Ingest/AddModel: a response lost after the server
// committed the write can surface a duplicate-side effect on retry; the
// server's duplicate-ID rejection on AddModel makes that visible rather
// than silent. Safe for concurrent use.
//
// Construct with NewClient; Dial and DialConfig remain for existing
// call sites.
type Client struct {
	bases   []string // base URLs; cur indexes the currently preferred one
	cur     atomic.Int32
	hc      *http.Client
	retries int
	backoff time.Duration

	sample  int
	onTrace func(op string, dump obs.TraceDump)
	nreq    atomic.Uint64
}

// ClientConfig tunes a Client.
//
// Deprecated: use NewClient with functional options (WithRetry,
// WithTimeout, WithPool, WithTraceSample, WithSeeds); the struct cannot
// express cluster seed lists or pool sizing and is kept only for
// existing DialConfig call sites.
type ClientConfig struct {
	// Retries is the number of extra attempts after a transport-level
	// failure (default 2).
	Retries int
	// Backoff is the base retry delay, multiplied by the attempt number
	// (default 50ms).
	Backoff time.Duration
	// Timeout bounds each HTTP request end to end (default 30s).
	Timeout time.Duration
	// TraceSample, when > 0 with OnTrace set, traces every Nth request end
	// to end: the client builds a span tree around the exchange, asks the
	// server for its span tree back (X-Dms-Trace request header, span
	// trailer on the response), and grafts the server's tree under the
	// round-trip span — one contiguous view from client_request down to the
	// fairds stages. Zero disables sampling.
	TraceSample int
	// OnTrace receives each sampled request's merged span tree; op is
	// "METHOD /path". Called synchronously on the requesting goroutine
	// after the response is consumed, so keep it cheap.
	OnTrace func(op string, dump obs.TraceDump)
}

func (c *ClientConfig) defaults() {
	if c.Retries <= 0 {
		c.Retries = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
}

// Dial builds a client for the server at addr ("host:port") and probes
// /healthz so misconfiguration fails fast. Equivalent to NewClient(addr).
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig is Dial with explicit tuning.
//
// Deprecated: use NewClient with functional options. DialConfig keeps
// working and maps onto the same construction path.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	cfg.defaults()
	o := defaultOptions()
	o.retries = cfg.Retries
	o.backoff = cfg.Backoff
	o.timeout = cfg.Timeout
	o.traceSample = cfg.TraceSample
	o.onTrace = cfg.OnTrace
	return newClient(addr, o)
}

// newClient is the shared construction path behind NewClient and the
// deprecated Dial/DialConfig.
func newClient(addr string, o clientOptions) (*Client, error) {
	bases := make([]string, 0, 1+len(o.seeds))
	bases = append(bases, "http://"+addr)
	for _, s := range o.seeds {
		if s != "" && s != addr {
			bases = append(bases, "http://"+s)
		}
	}
	c := &Client{
		bases:   bases,
		retries: o.retries,
		backoff: o.backoff,
		sample:  o.traceSample,
		onTrace: o.onTrace,
		hc: &http.Client{
			Timeout: o.timeout,
			Transport: &http.Transport{
				MaxIdleConns:        o.poolSize,
				MaxIdleConnsPerHost: o.poolSize,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	if o.ping {
		if err := c.Ping(); err != nil {
			return nil, fmt.Errorf("dmsapi: dial %s: %w", addr, err)
		}
	}
	return c, nil
}

// Ping verifies the server answers /healthz.
func (c *Client) Ping() error {
	_, err := c.Health()
	return err
}

// Health fetches the server's health summary.
func (c *Client) Health() (HealthResponse, error) {
	var out HealthResponse
	err := c.getJSON(PathHealth, &out)
	return out, err
}

// ServerStats fetches the server's /statsz counters.
func (c *Client) ServerStats() (Stats, error) {
	var out Stats
	err := c.getJSON(PathStats, &out)
	return out, err
}

// Close releases idle keep-alive connections.
func (c *Client) Close() { c.hc.CloseIdleConnections() }

// ---------------------------------------------------------------------------
// Data plane

// Ingest stores labeled samples under a dataset tag, returning document IDs.
func (c *Client) Ingest(dataset string, samples []*codec.Sample) ([]string, error) {
	var out IngestResponse
	err := c.postJSON(PathIngest, IngestRequest{Dataset: dataset, Samples: FromCodecSlice(samples)}, &out)
	return out.IDs, err
}

// IngestBatch stores labeled samples through the high-throughput batch
// endpoint. Per-document failures come back in the response's Errors array
// rather than failing the call; the returned error covers only
// request-level problems (transport failure after retries, 4xx/5xx).
// For streaming many batches with bounded in-flight concurrency, see
// NewBatchIngester.
func (c *Client) IngestBatch(dataset string, samples []*codec.Sample) (IngestBatchResponse, error) {
	var out IngestBatchResponse
	err := c.postJSON(PathIngestBatch, IngestBatchRequest{Dataset: dataset, Samples: FromCodecSlice(samples)}, &out)
	return out, err
}

// Certainty returns the fuzzy-clustering certainty of a dataset at the
// given membership threshold (<= 0 uses the server default of 0.5).
func (c *Client) Certainty(samples []*codec.Sample, threshold float64) (float64, error) {
	var out CertaintyResponse
	err := c.postJSON(PathCertainty, CertaintyRequest{Samples: FromCodecSlice(samples), Threshold: threshold}, &out)
	return out.Certainty, err
}

// Lookup retrieves PDF-matched labeled historical samples for the input.
func (c *Client) Lookup(samples []*codec.Sample) ([]*codec.Sample, error) {
	var out LookupResponse
	if err := c.postJSON(PathLookup, LookupRequest{Samples: FromCodecSlice(samples)}, &out); err != nil {
		return nil, err
	}
	return ToCodecSlice(out.Samples), nil
}

// Nearest returns the nearest labeled historical document per input sample.
func (c *Client) Nearest(samples []*codec.Sample, distinct bool) ([]Match, error) {
	var out NearestResponse
	err := c.postJSON(PathNearest, NearestRequest{Samples: FromCodecSlice(samples), Distinct: distinct}, &out)
	return out.Matches, err
}

// NearestExcluding is Nearest with an exclusion list of document IDs that
// must not be matched, returning the full response (including the
// cluster-mode Degraded flag).
func (c *Client) NearestExcluding(ctx context.Context, samples []*codec.Sample, distinct bool, exclude []string) (NearestResponse, error) {
	var out NearestResponse
	err := c.DoJSON(ctx, "POST", PathNearest,
		NearestRequest{Samples: FromCodecSlice(samples), Distinct: distinct, Exclude: exclude}, &out)
	return out, err
}

// Fit explicitly fits the server's clustering model with k clusters on
// the given samples (a no-op on an already-fitted service; the response
// reports which). The cluster router bootstraps every shard through this
// so the replicated models agree.
func (c *Client) Fit(ctx context.Context, samples []*codec.Sample, k int) (FitResponse, error) {
	var out FitResponse
	err := c.DoJSON(ctx, "POST", PathFit, FitRequest{Samples: FromCodecSlice(samples), K: k}, &out)
	return out, err
}

// SamplesByID fetches stored samples by document ID. With partial,
// unknown IDs come back in the missing list instead of failing the call.
func (c *Client) SamplesByID(ctx context.Context, ids []string, partial bool) ([]*codec.Sample, []string, error) {
	var out SamplesResponse
	if err := c.DoJSON(ctx, "POST", PathSamples, SamplesRequest{IDs: ids, Partial: partial}, &out); err != nil {
		return nil, nil, err
	}
	return ToCodecSlice(out.Samples), out.Missing, nil
}

// ClusterIDs lists the document IDs assigned to one cluster, sorted.
func (c *Client) ClusterIDs(ctx context.Context, cluster int) ([]string, error) {
	var out ClusterIDsResponse
	err := c.DoJSON(ctx, "POST", PathClusterIDs, ClusterIDsRequest{Cluster: cluster}, &out)
	return out.IDs, err
}

// PDF computes the dataset's cluster probability distribution.
func (c *Client) PDF(samples []*codec.Sample) (stats.PDF, error) {
	var out PDFResponse
	if err := c.postJSON(PathPDF, PDFRequest{Samples: FromCodecSlice(samples)}, &out); err != nil {
		return nil, err
	}
	return stats.PDF(out.PDF), nil
}

// ---------------------------------------------------------------------------
// Model plane

// AddModel registers a checkpoint with the PDF of its training data.
func (c *Client) AddModel(id string, state *nn.StateDict, pdf stats.PDF, meta map[string]string) error {
	blob, err := state.Bytes()
	if err != nil {
		return err
	}
	var out ModelInfo
	return c.postJSON(PathModels, AddModelRequest{ID: id, PDF: pdf, Meta: meta, State: blob}, &out)
}

// Models lists zoo entries in insertion order (no weights).
func (c *Client) Models() ([]ModelInfo, error) {
	var out ModelsResponse
	err := c.getJSON(PathModels, &out)
	return out.Models, err
}

// Recommend asks for the best foundation model for a dataset PDF. With
// maxJSD > 0 the paper's distance threshold applies; OK=false means train
// from scratch.
func (c *Client) Recommend(pdf stats.PDF, maxJSD float64) (RecommendResponse, error) {
	var out RecommendResponse
	err := c.postJSON(PathRecommend, RecommendRequest{PDF: pdf, MaxJSD: maxJSD}, &out)
	return out, err
}

// Checkpoint downloads and decodes a model's weights.
func (c *Client) Checkpoint(id string) (*nn.StateDict, error) {
	body, err := c.doRetry(context.Background(), "GET", strings.Replace(PathCheckpoint, "{id}", url.PathEscape(id), 1), nil)
	if err != nil {
		return nil, err
	}
	return nn.StateDictFromBytes(body)
}

// ---------------------------------------------------------------------------
// Training plane

// SubmitTrain submits an asynchronous server-side training job and
// returns its initial status. A saturated job queue surfaces as a
// StatusError with code 429.
func (c *Client) SubmitTrain(req TrainRequest) (TrainJob, error) {
	var out TrainJob
	err := c.postJSON(PathTrain, req, &out)
	return out, err
}

// TrainJobs lists every training job in submission order (without loss
// curves; fetch a single job for those).
func (c *Client) TrainJobs() ([]TrainJob, error) {
	var out TrainListResponse
	err := c.getJSON(PathTrain, &out)
	return out.Jobs, err
}

// TrainJob fetches one job's full status, including live loss curves.
func (c *Client) TrainJob(id string) (TrainJob, error) {
	var out TrainJob
	err := c.getJSON(strings.Replace(PathTrainJob, "{id}", url.PathEscape(id), 1), &out)
	return out, err
}

// CancelTrain requests cancellation of a job and returns its status
// (already-terminal jobs come back unchanged).
func (c *Client) CancelTrain(id string) (TrainJob, error) {
	var out TrainJob
	err := c.postJSON(strings.Replace(PathTrainCancel, "{id}", url.PathEscape(id), 1), struct{}{}, &out)
	return out, err
}

// WaitTrain polls a job until it reaches a terminal state or timeout
// elapses (poll <= 0 uses 100ms). A 429 on a status poll means the
// server shed the read under load, not that the job failed — the poll
// just retries until the deadline.
func (c *Client) WaitTrain(id string, poll, timeout time.Duration) (TrainJob, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for {
		job, err := c.TrainJob(id)
		if err != nil {
			var se *StatusError
			if errors.As(err, &se) && se.Code == http.StatusTooManyRequests && time.Now().Before(deadline) {
				time.Sleep(poll)
				continue
			}
			return job, err
		}
		if job.Terminal() {
			return job, nil
		}
		if time.Now().After(deadline) {
			return job, fmt.Errorf("dmsapi: train job %s still %s after %v", id, job.State, timeout)
		}
		time.Sleep(poll)
	}
}

// RapidTrain runs the paper's Fig. 5 rapid-train action server-side:
// submit the job (the daemon computes the PDF, picks the closest zoo
// checkpoint under the JSD threshold, and warm-starts — or cold-starts —
// training), wait for it to finish, and download the resulting
// checkpoint. The returned TrainJob carries the warm/cold decision,
// foundation lineage, and loss curves.
func (c *Client) RapidTrain(req TrainRequest, timeout time.Duration) (TrainJob, *nn.StateDict, error) {
	job, err := c.SubmitTrain(req)
	if err != nil {
		return job, nil, err
	}
	job, err = c.WaitTrain(job.ID, 0, timeout)
	if err != nil {
		return job, nil, err
	}
	if job.State != "done" {
		return job, nil, fmt.Errorf("dmsapi: train job %s ended %s: %s", job.ID, job.State, job.Error)
	}
	sd, err := c.Checkpoint(job.ModelID)
	if err != nil {
		return job, nil, fmt.Errorf("dmsapi: downloading trained checkpoint %s: %w", job.ModelID, err)
	}
	return job, sd, nil
}

// ---------------------------------------------------------------------------
// Transport

// DoJSON performs one JSON exchange (marshal in → request → unmarshal the
// 2xx body into out; nil in sends no body, nil out discards the body). It
// is the context-aware exported transport the cluster tier is built on:
// when ctx carries a sampled obs trace, the exchange joins it — the
// round-trip span opens under the caller's current span, the trace ID
// rides the request header, and the server's trailer span tree is
// attached back into the caller's trace — so client → router → shard
// produces one contiguous tree. Non-2xx responses decode into a
// *StatusError (see the package sentinels).
func (c *Client) DoJSON(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return fmt.Errorf("dmsapi: encoding request: %w", err)
		}
	}
	body, err := c.DoRaw(ctx, method, path, payload)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// DoRaw is DoJSON without body codecs: it sends payload verbatim (nil for
// no body) and returns the raw 2xx response body.
func (c *Client) DoRaw(ctx context.Context, method, path string, payload []byte) ([]byte, error) {
	return c.doRetry(ctx, method, path, payload)
}

func (c *Client) postJSON(path string, in, out any) error {
	return c.DoJSON(context.Background(), "POST", path, in, out)
}

func (c *Client) getJSON(path string, out any) error {
	return c.DoJSON(context.Background(), "GET", path, nil, out)
}

// doRetry performs one HTTP exchange, retrying transport-level failures
// with linear backoff and rotating to the next seed address on each such
// failure. The request body is a byte slice (not a stream) precisely so
// each retry can resend it from the start.
//
// Tracing takes one of two shapes:
//   - joined: ctx already carries a trace (a router handling a traced
//     request, or any caller inside an obs span). Round-trip spans open
//     in that trace, and a sampled trace additionally sends the trace
//     header and grafts the server's trailer tree back in.
//   - sampled cadence: no trace in ctx, and this request is the Nth of
//     the TraceSample cadence. A fresh client_request root is built and
//     the merged dump goes to OnTrace whatever the outcome, so failed
//     exchanges are visible too (just without a server subtree).
func (c *Client) doRetry(ctx context.Context, method, path string, payload []byte) ([]byte, error) {
	tr := obs.FromContext(ctx)
	joined := tr != nil
	if !joined && c.sample > 0 && c.onTrace != nil && c.nreq.Add(1)%uint64(c.sample) == 0 {
		var root *obs.Span
		tr = obs.NewTrace("", true)
		ctx = obs.NewContext(ctx, tr)
		ctx, root = obs.StartSpan(ctx, "client_request")
		defer func() {
			root.End()
			c.onTrace(method+" "+path, tr.Dump())
		}()
	}
	sampled := tr.Sampled()

	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Duration(attempt) * c.backoff):
			}
		}
		base := c.bases[int(c.cur.Load())%len(c.bases)]
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, base+path, body)
		if err != nil {
			return nil, err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if sampled {
			req.Header.Set(obs.TraceHeader, obs.FormatTraceHeader(tr.ID(), true))
		}
		_, att := obs.StartSpan(ctx, "http_roundtrip")
		resp, err := c.hc.Do(req)
		if err != nil {
			att.End()
			lastErr = err // transport-level: connection refused/reset, timeout
			c.rotate()
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		att.End()
		if err != nil {
			lastErr = err // response truncated mid-stream
			c.rotate()
			continue
		}
		// Trailers are populated only once the body is fully consumed; a
		// missing or malformed trailer (fixed-length responses drop it)
		// just means no server subtree.
		if sampled {
			if d, ok := obs.DecodeDump(resp.Trailer.Get(obs.SpanHeader)); ok {
				tr.AttachRemote(att.Index(), d)
			}
		}
		if resp.StatusCode/100 != 2 {
			return nil, statusError(resp.StatusCode, data)
		}
		return data, nil
	}
	return nil, fmt.Errorf("dmsapi: %s %s failed after %d attempts: %w", method, path, c.retries+1, lastErr)
}

// rotate moves the preferred base to the next seed after a transport
// failure (a no-op for single-address clients).
func (c *Client) rotate() {
	if len(c.bases) > 1 {
		c.cur.Store((c.cur.Load() + 1) % int32(len(c.bases)))
	}
}
