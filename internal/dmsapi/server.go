package dmsapi

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
	"fairdms/internal/hdrhist"
	"fairdms/internal/nn"
	"fairdms/internal/obs"
	"fairdms/internal/trainer"
)

// Defaults for ServerConfig zero values.
const (
	defaultMaxInFlight  = 64
	defaultCacheSize    = 128
	defaultMaxBodyBytes = 256 << 20 // 256 MiB: generous for sample batches, blocks runaway bodies
	defaultMaxBatchDocs = 8192      // documents per ingest:batch request
	defaultSlowLogSize  = 64        // slow-request ring entries
)

// ServerConfig wires a Server to its two services and tunes its behavior.
type ServerConfig struct {
	// DS is the FAIR Data Service instance to serve. Required.
	DS *fairds.Service
	// Zoo is the FAIR Model Service model zoo to serve. Required.
	Zoo *fairms.Zoo
	// MaxInFlight bounds concurrently handled requests; excess load is shed
	// with 429 so a burst degrades into fast rejections instead of a pileup
	// (health and stats endpoints are exempt). Zero means
	// defaultMaxInFlight; negative means unlimited.
	MaxInFlight int
	// CacheSize bounds the LRU of completed recommend/PDF results. Zero
	// means defaultCacheSize; negative disables memoization (in-flight
	// coalescing stays on).
	CacheSize int
	// BootstrapK, when positive, lets a daemon start with an unfitted data
	// service: the first ingest fits the clustering module with K =
	// BootstrapK on that batch before storing it. Zero requires the caller
	// to have fitted clusters already.
	BootstrapK int
	// MaxBodyBytes caps request-body size; oversized bodies fail instead of
	// occupying memory and an admission slot indefinitely. Zero means
	// defaultMaxBodyBytes; negative means unlimited.
	MaxBodyBytes int64
	// MaxBatchDocs caps documents per ingest:batch request (413 beyond it),
	// bounding the work one request can pin. Zero means
	// defaultMaxBatchDocs; negative means unlimited.
	MaxBatchDocs int
	// TrainWorkers enables the embedded training subsystem (/v1/train):
	// the number of jobs trained in parallel. Zero disables training (the
	// /v1/train routes 404).
	TrainWorkers int
	// TrainQueue bounds jobs waiting for a training worker; submissions
	// past it are shed with 429. Zero means trainer.DefaultQueue.
	TrainQueue int
	// SlowThreshold enables the always-on slow-request log: requests
	// slower than this retain their full span tree in a ring served at
	// GET /debug/slowz. Zero or negative disables the log (the route
	// answers 404) and with it the per-request tracing overhead for
	// unsampled requests.
	SlowThreshold time.Duration
	// SlowLogSize bounds the slow-request ring (default 64 entries).
	SlowLogSize int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (opt-in: the
	// profiling surface should not be reachable on every deployment).
	EnablePprof bool
	// WalStats, when non-nil, surfaces the durability counters of a
	// WAL-backed document store on /statsz (the "wal" key) and /metricsz
	// (the dms_wal_* families). The daemon installs it when it runs the
	// store in WAL-durable mode; nil omits the surface entirely.
	WalStats func() WalStats
	// Logger receives request-failure logs; nil silences them.
	Logger *log.Logger
}

// Server exposes a fairds.Service and fairms.Zoo over HTTP/JSON. It is
// production-shaped: bounded in-flight concurrency with 429 shedding, a
// coalescing LRU cache on the hot read paths (recommend, PDF), per-endpoint
// request/error/latency counters surfaced at /statsz, and graceful
// shutdown. Safe for concurrent use.
type Server struct {
	cfg   ServerConfig
	mux   *http.ServeMux
	http  *http.Server
	lis   net.Listener
	start time.Time

	// dsMu guards the fairds.Service: the bootstrap fit mutates its
	// clustering model, everything else only reads it. fairms.Zoo locks
	// internally and needs no guarding here.
	dsMu sync.RWMutex
	// clusterK mirrors DS.K() so /healthz never waits on dsMu — the
	// bootstrap fit holds it exclusively for a full k-means run, and a
	// liveness probe stalling exactly then would get the daemon killed
	// mid-bootstrap.
	clusterK atomic.Int64

	// sem is the in-flight admission semaphore (nil = unlimited).
	sem      chan struct{}
	inFlight atomic.Int64
	shed     atomic.Int64
	requests atomic.Int64

	cache *cache
	// zooGen/clusterGen version the cache keyspace: adding a model
	// invalidates recommend results, refitting clusters invalidates PDF
	// results. Bumping the generation orphans stale entries, which age out
	// of the LRU.
	zooGen     atomic.Uint64
	clusterGen atomic.Uint64

	metrics map[string]*endpointMetrics

	// reg is the central metrics registry behind GET /metricsz; every
	// /statsz counter is mirrored into it as a func-backed metric reading
	// the same atomics, so the two surfaces cannot drift. slow is the
	// always-on slow-request ring behind GET /debug/slowz.
	reg  *obs.Registry
	slow *obs.SlowLog

	epErrors  *obs.CounterVec
	epLatency *obs.HistogramVec

	// trainer is the embedded training-job subsystem (nil when
	// TrainWorkers == 0). Its jobs read the data service under dsMu's
	// read side and bump zooGen when a checkpoint lands in the zoo.
	trainer *trainer.Manager
}

// endpointMetrics accumulates per-endpoint counters. Both live in the
// metrics registry (error counter and latency histogram keyed by
// endpoint), so /statsz and /metricsz read the very same atomics; the
// histogram is lock-free, so neither the request path nor a concurrent
// scrape ever serializes on a stats lock.
type endpointMetrics struct {
	errors *obs.Counter
	hist   *hdrhist.Histogram
}

func (m *endpointMetrics) observe(d time.Duration, failed bool) {
	if failed {
		m.errors.Inc()
	}
	m.hist.Record(d)
}

// httpError carries a status and envelope code through handler returns.
type httpError struct {
	code    int
	errCode ErrorCode
	msg     string
}

func (e *httpError) Error() string { return e.msg }

// errf builds a handler error whose envelope code is derived from the
// HTTP status; errc is the variant for statuses with more than one
// meaning (409 is conflict or not_fitted).
func errf(code int, format string, args ...any) error {
	return &httpError{code: code, errCode: codeForStatus(code), msg: fmt.Sprintf(format, args...)}
}

func errc(code int, errCode ErrorCode, format string, args ...any) error {
	return &httpError{code: code, errCode: errCode, msg: fmt.Sprintf(format, args...)}
}

// NewServer validates the config and builds the routing table; call Listen
// to start serving.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.DS == nil || cfg.Zoo == nil {
		return nil, errors.New("dmsapi: server needs both a data service and a model zoo")
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = defaultCacheSize
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.MaxBatchDocs == 0 {
		cfg.MaxBatchDocs = defaultMaxBatchDocs
	}
	if cfg.SlowLogSize == 0 {
		cfg.SlowLogSize = defaultSlowLogSize
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		cache:   newCache(max(cfg.CacheSize, 0)),
		metrics: make(map[string]*endpointMetrics),
		reg:     obs.NewRegistry(),
		slow:    obs.NewSlowLog(cfg.SlowLogSize, cfg.SlowThreshold),
	}
	if cfg.MaxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	s.clusterK.Store(int64(cfg.DS.K()))
	s.registerMetrics()

	s.route("POST "+PathIngest, "data.ingest", true, s.handleIngest)
	s.route("POST "+PathIngestBatch, "data.ingest_batch", true, s.handleIngestBatch)
	s.route("POST "+PathCertainty, "data.certainty", true, s.handleCertainty)
	s.route("POST "+PathLookup, "data.lookup", true, s.handleLookup)
	s.route("POST "+PathNearest, "data.nearest", true, s.handleNearest)
	s.route("POST "+PathPDF, "data.pdf", true, s.handlePDF)
	s.route("POST "+PathFit, "data.fit", true, s.handleFit)
	s.route("POST "+PathSamples, "data.samples", true, s.handleSamples)
	s.route("POST "+PathClusterIDs, "data.ids", true, s.handleClusterIDs)
	s.route("POST "+PathModels, "models.add", true, s.handleAddModel)
	s.route("GET "+PathModels, "models.list", true, s.handleListModels)
	s.route("POST "+PathRecommend, "models.recommend", true, s.handleRecommend)
	s.route("GET "+PathCheckpoint, "models.checkpoint", true, s.handleCheckpoint)
	s.route("GET "+PathHealth, "healthz", false, s.handleHealth)
	s.route("GET "+PathStats, "statsz", false, s.handleStats)
	// Scrape and debug surfaces share the shed exemption with health and
	// stats: an overloaded server is exactly when its metrics and slow
	// traces are needed.
	s.route("GET "+PathMetrics, "metricsz", false, s.handleMetrics)
	s.route("GET "+PathSlow, "slowz", false, s.handleSlow)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	if cfg.TrainWorkers > 0 {
		mgr, err := trainer.New(trainer.Config{
			DS:      cfg.DS,
			Zoo:     cfg.Zoo,
			Workers: cfg.TrainWorkers,
			Queue:   cfg.TrainQueue,
			// Jobs read the data service under the same lock the bootstrap
			// fit takes exclusively, so a fit never races a running job.
			Guard: &s.dsMu,
			// A checkpoint landing in the zoo invalidates memoized
			// recommend results exactly like a client-side model add.
			OnRegister: func(string) { s.zooGen.Add(1) },
			// Job stage timings land in the same registry and slow-request
			// ring as serving traffic: epoch durations under
			// dms_train_epoch_seconds, and any job slower than the request
			// threshold retains its span tree in /debug/slowz.
			Obs: s.reg,
			OnTrace: func(d time.Duration, dump obs.TraceDump) {
				s.slow.Observe("train.job", d, time.Now(), func() obs.TraceDump { return dump })
			},
			Logger: cfg.Logger,
		})
		if err != nil {
			return nil, err
		}
		s.trainer = mgr
		mgr.Start()
		// Train submissions are not shed by the global admission gate: the
		// trainer's own bounded queue is the backpressure (429 on
		// saturation), and a queued submission costs almost nothing while
		// held. Cancels are exempt too — under overload, the one request
		// that frees an expensive training worker must not be the one
		// rejected. Status reads stay shed like any other read.
		s.route("POST "+PathTrain, "train.submit", false, s.handleTrainSubmit)
		s.route("GET "+PathTrain, "train.list", true, s.handleTrainList)
		s.route("GET "+PathTrainJob, "train.get", true, s.handleTrainGet)
		s.route("POST "+PathTrainJob, "train.cancel", false, s.handleTrainCancel)
	}
	return s, nil
}

// Trainer exposes the embedded training manager (nil when training is
// disabled) — used by the daemon and tests.
func (s *Server) Trainer() *trainer.Manager { return s.trainer }

// Registry exposes the server's metrics registry so the daemon can hang
// additional collectors (e.g. docstore RPC instrumentation) onto the same
// /metricsz surface.
func (s *Server) Registry() *obs.Registry { return s.reg }

// SlowLog exposes the slow-request ring (disabled unless
// ServerConfig.SlowThreshold > 0).
func (s *Server) SlowLog() *obs.SlowLog { return s.slow }

// registerMetrics mirrors every /statsz counter into the Prometheus
// registry. Top-level, cache, and index counters stay owned by their
// existing atomics and are read through closures — one source of truth,
// two exposition formats. Per-endpoint series are added lazily by route().
func (s *Server) registerMetrics() {
	r := s.reg
	r.GaugeFunc("dms_uptime_seconds", "seconds since server start",
		func() float64 { return time.Since(s.start).Seconds() })
	r.CounterFunc("dms_requests_total", "requests handled (shed excluded)", s.requests.Load)
	r.CounterFunc("dms_shed_total", "requests rejected with 429 by admission control", s.shed.Load)
	r.GaugeFunc("dms_in_flight", "requests currently being handled",
		func() float64 { return float64(s.inFlight.Load()) })
	r.GaugeFunc("dms_cluster_k", "fitted cluster count (0 = awaiting bootstrap)",
		func() float64 { return float64(s.clusterK.Load()) })

	r.CounterFunc("dms_cache_hits_total", "coalescing-cache hits", s.cache.hits.Load)
	r.CounterFunc("dms_cache_misses_total", "coalescing-cache misses", s.cache.misses.Load)
	r.CounterFunc("dms_cache_coalesced_total", "callers that piggybacked on an in-flight compute", s.cache.coalesced.Load)
	r.CounterFunc("dms_cache_evictions_total", "LRU evictions", s.cache.evictions.Load)
	r.GaugeFunc("dms_cache_size", "retained cache entries",
		func() float64 { return float64(s.cache.len()) })

	// IndexStats reads only atomics inside the data service, so scrapes
	// never contend with queries or the bootstrap fit.
	r.GaugeFunc("dms_index_ready", "1 when the vector index covers the store",
		func() float64 {
			if s.cfg.DS.IndexStats().Ready {
				return 1
			}
			return 0
		})
	r.GaugeFunc("dms_index_size", "indexed vectors",
		func() float64 { return float64(s.cfg.DS.IndexStats().Size) })
	r.CounterFunc("dms_index_hits_total", "nearest-label queries answered by the index",
		func() int64 { return s.cfg.DS.IndexStats().Hits })
	r.CounterFunc("dms_index_misses_total", "nearest-label queries that fell back to a store scan",
		func() int64 { return s.cfg.DS.IndexStats().Misses })
	r.CounterFunc("dms_index_probed_total", "vectors distance-compared by the index",
		func() int64 { return s.cfg.DS.IndexStats().Probed })
	r.CounterFunc("dms_index_lists_probed_total", "index partitions visited",
		func() int64 { return s.cfg.DS.IndexStats().ListsProbed })
	r.CounterFunc("dms_index_corrupt_total", "corrupt stored-document observations",
		func() int64 { return s.cfg.DS.IndexStats().Corrupt })

	r.CounterFunc("dms_slow_requests_total", "requests over the slow-log threshold", s.slow.Total)

	if s.cfg.TrainWorkers > 0 {
		trainStats := func(pick func(trainer.Stats) int64) func() int64 {
			return func() int64 {
				if s.trainer == nil { // scrape racing construction
					return 0
				}
				return pick(s.trainer.Stats())
			}
		}
		r.CounterFunc("dms_train_submitted_total", "training jobs submitted",
			trainStats(func(t trainer.Stats) int64 { return t.Submitted }))
		r.CounterFunc("dms_train_completed_total", "training jobs completed",
			trainStats(func(t trainer.Stats) int64 { return t.Completed }))
		r.CounterFunc("dms_train_failed_total", "training jobs failed",
			trainStats(func(t trainer.Stats) int64 { return t.Failed }))
		r.CounterFunc("dms_train_canceled_total", "training jobs canceled",
			trainStats(func(t trainer.Stats) int64 { return t.Canceled }))
		r.CounterFunc("dms_train_warm_starts_total", "jobs warm-started from a zoo checkpoint",
			trainStats(func(t trainer.Stats) int64 { return t.WarmStarts }))
		r.CounterFunc("dms_train_cold_starts_total", "jobs trained from scratch",
			trainStats(func(t trainer.Stats) int64 { return t.ColdStarts }))
		r.GaugeFunc("dms_train_queue_depth", "jobs waiting for a training worker",
			func() float64 {
				if s.trainer == nil {
					return 0
				}
				return float64(s.trainer.Stats().QueueDepth)
			})
		r.GaugeFunc("dms_train_active", "jobs currently training",
			func() float64 {
				if s.trainer == nil {
					return 0
				}
				return float64(s.trainer.Stats().Active)
			})
	}

	if s.cfg.WalStats != nil {
		walStat := func(pick func(WalStats) int64) func() int64 {
			return func() int64 { return pick(s.cfg.WalStats()) }
		}
		r.CounterFunc("dms_wal_appends_total", "WAL records appended",
			walStat(func(w WalStats) int64 { return w.Appends }))
		r.CounterFunc("dms_wal_bytes_total", "WAL bytes appended",
			walStat(func(w WalStats) int64 { return w.AppendedBytes }))
		r.CounterFunc("dms_wal_syncs_total", "WAL fsync calls",
			walStat(func(w WalStats) int64 { return w.Syncs }))
		r.CounterFunc("dms_wal_replays_total", "WAL segment replays at startup",
			walStat(func(w WalStats) int64 { return w.Replays }))
		r.CounterFunc("dms_wal_replayed_records_total", "WAL records replayed at startup",
			walStat(func(w WalStats) int64 { return w.ReplayedRecords }))
		r.CounterFunc("dms_wal_torn_truncations_total", "torn WAL tails truncated during replay",
			walStat(func(w WalStats) int64 { return w.TornTruncations }))
		r.CounterFunc("dms_wal_corrupt_records_total", "corrupt WAL records truncated during replay",
			walStat(func(w WalStats) int64 { return w.CorruptRecords }))
		r.CounterFunc("dms_wal_compactions_total", "WAL compactions folded into the snapshot",
			walStat(func(w WalStats) int64 { return w.Compactions }))
	}

	s.epErrors = r.CounterVec("dms_endpoint_errors_total", "error responses by endpoint", "endpoint")
	s.epLatency = r.HistogramVec("dms_endpoint_latency_seconds", "request latency by endpoint", "endpoint")
}

// route registers a handler with admission control, metrics, and
// request tracing. shed=false exempts the endpoint from load shedding
// (health, stats, and the metrics/slowz scrape surfaces must answer even
// when the server is saturated).
func (s *Server) route(pattern, name string, shed bool, h func(w http.ResponseWriter, r *http.Request) error) {
	m := &endpointMetrics{errors: s.epErrors.With(name), hist: s.epLatency.With(name)}
	s.metrics[name] = m
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.MaxBodyBytes > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		if shed && s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.shed.Add(1)
				writeError(w, http.StatusTooManyRequests, CodeOverloaded, "server at max in-flight requests")
				return
			}
		}
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		s.requests.Add(1)

		// A trace is built when the client asked for one (X-Dms-Trace with
		// ;sample) or the slow-request log might need it; otherwise the
		// request runs with a nil trace and every span call no-ops.
		id, sampled := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
		var tr *obs.Trace
		var root *obs.Span
		if sampled || s.slow.Enabled() {
			tr = obs.NewTrace(id, sampled)
			ctx := obs.NewContext(r.Context(), tr)
			ctx, root = obs.StartSpan(ctx, "request")
			r = r.WithContext(ctx)
		}
		if tr.Sampled() {
			// The span tree is only complete after the body is written, so
			// it rides back as an HTTP trailer (chunked responses only —
			// fixed-length ones like checkpoint downloads drop it).
			w.Header().Set("Trailer", obs.SpanHeader)
		}

		begin := time.Now()
		err := h(w, r)
		d := time.Since(begin)
		root.End()
		m.observe(d, err != nil)
		if tr != nil {
			s.slow.Observe(name, d, time.Now(), tr.Dump)
			if tr.Sampled() {
				w.Header().Set(obs.SpanHeader, obs.EncodeDump(tr.Dump()))
			}
		}
		if err != nil {
			code, errCode := http.StatusInternalServerError, CodeInternal
			var he *httpError
			if errors.As(err, &he) {
				code, errCode = he.code, he.errCode
			}
			if s.cfg.Logger != nil {
				s.cfg.Logger.Printf("dmsapi: %s %s: %d %v", r.Method, r.URL.Path, code, err)
			}
			writeError(w, code, errCode, err.Error())
		}
	})
}

// Listen binds to addr ("127.0.0.1:0" picks a free port) and starts
// serving in a background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lis = lis
	s.http = &http.Server{
		Handler: s.mux,
		// Bound header reads and idle keep-alives so trickling clients
		// cannot pin connections (and admission slots) forever. No global
		// ReadTimeout: large legitimate ingest bodies stream at their own
		// pace under the MaxBodyBytes cap.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go s.http.Serve(lis)
	return lis.Addr().String(), nil
}

// Addr returns the bound address ("" before Listen).
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Handler exposes the routing table (e.g. for httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight requests get until ctx expires to finish, and the training
// subsystem stops accepting jobs, cancels the running ones, and drains
// its workers.
func (s *Server) Shutdown(ctx context.Context) error {
	var httpErr error
	if s.http != nil {
		httpErr = s.http.Shutdown(ctx)
	}
	if s.trainer != nil {
		if err := s.trainer.Shutdown(ctx); err != nil && httpErr == nil {
			httpErr = err
		}
	}
	return httpErr
}

// Requests reports how many requests have been handled (shed ones excluded).
func (s *Server) Requests() int64 { return s.requests.Load() }

// Shed reports how many requests were rejected with 429.
func (s *Server) Shed() int64 { return s.shed.Load() }

// buildInfo reads the running binary's identity once: Go toolchain,
// main-module version, and VCS revision (when built from a checkout).
var buildInfo = sync.OnceValue(func() (bi struct{ goVersion, version, revision string }) {
	bi.goVersion, bi.version, bi.revision = "unknown", "unknown", "unknown"
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.goVersion = info.GoVersion
	if v := info.Main.Version; v != "" {
		bi.version = v
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			bi.revision = kv.Value
		}
	}
	return bi
})

// BuildIdentity reports the running binary's identity (Go toolchain,
// main-module version, VCS revision) — the same block dmsd's /statsz
// carries, exported so the cluster router reports it too.
func BuildIdentity() (goVersion, version, revision string) {
	bi := buildInfo()
	return bi.goVersion, bi.version, bi.revision
}

// Stats snapshots the server counters (the /statsz payload).
func (s *Server) Stats() Stats {
	eps := make(map[string]EndpointStats, len(s.metrics))
	for name, m := range s.metrics {
		snap := m.hist.Snapshot()
		total := float64(snap.SumNS) / 1e6
		ep := EndpointStats{
			Count:   snap.Count,
			Errors:  m.errors.Value(),
			TotalMS: total,
			MaxMS:   float64(snap.MaxNS) / 1e6,
			P50MS:   durMS(snap.Quantile(0.50)),
			P95MS:   durMS(snap.Quantile(0.95)),
			P99MS:   durMS(snap.Quantile(0.99)),
			P999MS:  durMS(snap.Quantile(0.999)),
		}
		if snap.Count > 0 {
			ep.AverageMS = total / float64(snap.Count)
		}
		eps[name] = ep
	}
	var ts *TrainStats
	if s.trainer != nil {
		snap := s.trainer.Stats()
		ts = &snap
	}
	var ws *WalStats
	if s.cfg.WalStats != nil {
		snap := s.cfg.WalStats()
		ws = &snap
	}
	bi := buildInfo()
	// IndexStats is atomically counted inside the data service, so no dsMu
	// here — /statsz answers even during a bootstrap fit.
	is := s.cfg.DS.IndexStats()
	return Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		GoVersion:     bi.goVersion,
		Version:       bi.version,
		Revision:      bi.revision,
		InFlight:      int(s.inFlight.Load()),
		Shed:          s.shed.Load(),
		Requests:      s.requests.Load(),
		Cache:         s.cache.stats(),
		Index: IndexStats{
			Enabled:     is.Enabled,
			Ready:       is.Ready,
			Size:        is.Size,
			Hits:        is.Hits,
			Misses:      is.Misses,
			Probed:      is.Probed,
			ListsProbed: is.ListsProbed,
			Corrupt:     is.Corrupt,
		},
		Train:     ts,
		Wal:       ws,
		Endpoints: eps,
	}
}

// ---------------------------------------------------------------------------
// Data-plane handlers

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) error {
	var req IngestRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		return err
	}
	samples, err := decodeSamples(req.Samples)
	if err != nil {
		return err
	}
	if err := s.ensureClusters(samples); err != nil {
		return err
	}
	s.dsMu.RLock()
	ids, err := s.cfg.DS.IngestLabeledContext(r.Context(), samples, req.Dataset)
	s.dsMu.RUnlock()
	if err != nil {
		return serviceError(err)
	}
	return writeJSON(w, IngestResponse{IDs: ids})
}

// handleIngestBatch is the high-throughput ingest path: per-document
// failure reporting instead of all-or-nothing, and a pipelined
// embed→index→store flow underneath (fairds.IngestLabeledBatch). A
// malformed wire sample is rejected at this boundary with a DocError; the
// survivors bootstrap the clustering model if needed and commit.
func (s *Server) handleIngestBatch(w http.ResponseWriter, r *http.Request) error {
	var req IngestBatchRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		return err
	}
	if len(req.Samples) == 0 {
		return errf(http.StatusBadRequest, "ingest-batch: empty sample batch")
	}
	if s.cfg.MaxBatchDocs > 0 && len(req.Samples) > s.cfg.MaxBatchDocs {
		return errf(http.StatusRequestEntityTooLarge,
			"ingest-batch: %d documents exceeds the %d-document cap (split the batch)",
			len(req.Samples), s.cfg.MaxBatchDocs)
	}

	resp := IngestBatchResponse{IDs: make([]string, len(req.Samples))}
	valid := make([]*codec.Sample, 0, len(req.Samples))
	validIdx := make([]int, 0, len(req.Samples))
	for i := range req.Samples {
		smp, err := decodeSample(req.Samples[i])
		if err != nil {
			resp.Errors = append(resp.Errors, DocError{Index: i, Error: err.Error()})
			continue
		}
		valid = append(valid, smp)
		validIdx = append(validIdx, i)
	}

	if len(valid) > 0 {
		// The bootstrap fit collates its input, which would fail the whole
		// request on a mixed-width batch — but per-document failure is this
		// endpoint's contract, so only documents matching the batch's
		// reference width (the first valid sample, same rule as
		// IngestLabeledBatch) feed the fit; the off-width rest still get
		// their individual errors from the service below.
		fitSet := valid
		refWidth := valid[0].Elems()
		for _, smp := range valid[1:] {
			if smp.Elems() != refWidth {
				fitSet = make([]*codec.Sample, 0, len(valid))
				for _, s := range valid {
					if s.Elems() == refWidth {
						fitSet = append(fitSet, s)
					}
				}
				break
			}
		}
		if err := s.ensureClusters(fitSet); err != nil {
			return err
		}
		s.dsMu.RLock()
		res, err := s.cfg.DS.IngestLabeledBatchContext(r.Context(), valid, req.Dataset, fairds.BatchOptions{})
		s.dsMu.RUnlock()
		if err != nil {
			return serviceError(err)
		}
		for j, id := range res.IDs {
			resp.IDs[validIdx[j]] = id
		}
		for _, de := range res.Errors {
			resp.Errors = append(resp.Errors, DocError{Index: validIdx[de.Index], Error: de.Err.Error()})
		}
	}
	sort.Slice(resp.Errors, func(i, j int) bool { return resp.Errors[i].Index < resp.Errors[j].Index })
	for _, id := range resp.IDs {
		if id != "" {
			resp.Inserted++
		}
	}
	return writeJSON(w, resp)
}

// ensureClusters performs the bootstrap fit: a daemon that started with an
// empty store fits its clustering module on the first ingested batch.
func (s *Server) ensureClusters(samples []*codec.Sample) error {
	s.dsMu.RLock()
	fitted := s.cfg.DS.K() > 0
	s.dsMu.RUnlock()
	if fitted || s.cfg.BootstrapK <= 0 {
		return nil
	}
	s.dsMu.Lock()
	defer s.dsMu.Unlock()
	if s.cfg.DS.K() > 0 { // raced with another bootstrapper
		return nil
	}
	x, err := fairds.Collate(samples)
	if err != nil {
		return errf(http.StatusBadRequest, "ingest: %v", err)
	}
	if err := s.cfg.DS.FitClustersK(x, s.cfg.BootstrapK); err != nil {
		return serviceError(err)
	}
	s.clusterK.Store(int64(s.cfg.DS.K()))
	s.clusterGen.Add(1)
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("dmsapi: bootstrap-fitted %d clusters on a %d-sample batch",
			s.cfg.BootstrapK, len(samples))
	}
	return nil
}

func (s *Server) handleCertainty(w http.ResponseWriter, r *http.Request) error {
	var req CertaintyRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		return err
	}
	samples, err := decodeSamples(req.Samples)
	if err != nil {
		return err
	}
	x, err := fairds.Collate(samples)
	if err != nil {
		return errf(http.StatusBadRequest, "certainty: %v", err)
	}
	threshold := req.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}
	s.dsMu.RLock()
	cert, err := s.cfg.DS.CertaintyContext(r.Context(), x, threshold)
	s.dsMu.RUnlock()
	if err != nil {
		return serviceError(err)
	}
	return writeJSON(w, CertaintyResponse{Certainty: cert})
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) error {
	var req LookupRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		return err
	}
	samples, err := decodeSamples(req.Samples)
	if err != nil {
		return err
	}
	x, err := fairds.Collate(samples)
	if err != nil {
		return errf(http.StatusBadRequest, "lookup: %v", err)
	}
	s.dsMu.RLock()
	labeled, err := s.cfg.DS.LookupLabeledContext(r.Context(), x)
	s.dsMu.RUnlock()
	if err != nil {
		return serviceError(err)
	}
	return writeJSON(w, LookupResponse{Samples: FromCodecSlice(labeled)})
}

func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request) error {
	var req NearestRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		return err
	}
	samples, err := decodeSamples(req.Samples)
	if err != nil {
		return err
	}
	var exclude map[string]bool
	if len(req.Exclude) > 0 {
		exclude = make(map[string]bool, len(req.Exclude))
		for _, id := range req.Exclude {
			exclude[id] = true
		}
	}
	s.dsMu.RLock()
	matches, err := s.cfg.DS.NearestMatchesExcluding(r.Context(), samples, req.Distinct, exclude)
	s.dsMu.RUnlock()
	if err != nil {
		return serviceError(err)
	}
	out := make([]Match, len(matches))
	for i, m := range matches {
		if m.DocID != "" {
			out[i] = Match{DocID: m.DocID, Dist: m.Dist, Found: true}
		}
	}
	return writeJSON(w, NearestResponse{Matches: out})
}

func (s *Server) handlePDF(w http.ResponseWriter, r *http.Request) error {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return errf(http.StatusBadRequest, "pdf: reading body: %v", err)
	}
	key := fmt.Sprintf("pdf:%d:%s", s.clusterGen.Load(), bodyHash(body))
	v, err := s.cache.do(r.Context(), key, func(ctx context.Context) (any, error) {
		var req PDFRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, errf(http.StatusBadRequest, "pdf: decoding request: %v", err)
		}
		samples, err := decodeSamples(req.Samples)
		if err != nil {
			return nil, err
		}
		x, err := fairds.Collate(samples)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "pdf: %v", err)
		}
		s.dsMu.RLock()
		pdf, err := s.cfg.DS.DatasetPDFContext(ctx, x)
		s.dsMu.RUnlock()
		if err != nil {
			return nil, serviceError(err)
		}
		return PDFResponse{PDF: pdf, K: len(pdf)}, nil
	})
	if err != nil {
		return err
	}
	return writeJSON(w, v)
}

// handleFit explicitly fits the clustering model — the cluster router's
// coordinated bootstrap: every shard is fitted on the same full batch
// (and the shards share an embedder seed), so the replicated models
// agree and scatter-gather reductions stay exact. Idempotent: a fitted
// service reports its K and does nothing.
func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) error {
	var req FitRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		return err
	}
	if req.K <= 0 {
		return errf(http.StatusBadRequest, "fit: k must be positive, got %d", req.K)
	}
	samples, err := decodeSamples(req.Samples)
	if err != nil {
		return err
	}
	s.dsMu.Lock()
	defer s.dsMu.Unlock()
	if k := s.cfg.DS.K(); k > 0 {
		return writeJSON(w, FitResponse{K: k})
	}
	x, err := fairds.Collate(samples)
	if err != nil {
		return errf(http.StatusBadRequest, "fit: %v", err)
	}
	if err := s.cfg.DS.FitClustersK(x, req.K); err != nil {
		return serviceError(err)
	}
	s.clusterK.Store(int64(s.cfg.DS.K()))
	s.clusterGen.Add(1)
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("dmsapi: fit %d clusters on a %d-sample batch (explicit)", req.K, len(samples))
	}
	return writeJSON(w, FitResponse{K: s.cfg.DS.K(), Fitted: true})
}

// handleSamples fetches stored samples by ID — the cluster router's
// lookup merge retrieves each shard's contribution through this.
func (s *Server) handleSamples(w http.ResponseWriter, r *http.Request) error {
	var req SamplesRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		return err
	}
	if len(req.IDs) == 0 {
		return errf(http.StatusBadRequest, "samples: empty id list")
	}
	s.dsMu.RLock()
	samples, missing, err := s.cfg.DS.SamplesByIDContext(r.Context(), req.IDs, req.Partial)
	s.dsMu.RUnlock()
	if err != nil {
		if !req.Partial {
			// A miss on the strict path is the caller naming an unknown
			// document, not a server fault.
			return errf(http.StatusNotFound, "samples: %v", err)
		}
		return serviceError(err)
	}
	return writeJSON(w, SamplesResponse{Samples: FromCodecSlice(samples), Missing: missing})
}

// handleClusterIDs lists one cluster's document IDs (sorted) — the
// candidate-gathering half of the router's lookup merge.
func (s *Server) handleClusterIDs(w http.ResponseWriter, r *http.Request) error {
	var req ClusterIDsRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		return err
	}
	if req.Cluster < 0 {
		return errf(http.StatusBadRequest, "ids: negative cluster %d", req.Cluster)
	}
	s.dsMu.RLock()
	ids, err := s.cfg.DS.ClusterDocIDs(r.Context(), req.Cluster)
	s.dsMu.RUnlock()
	if err != nil {
		return serviceError(err)
	}
	return writeJSON(w, ClusterIDsResponse{IDs: ids})
}

// ---------------------------------------------------------------------------
// Model-plane handlers

func (s *Server) handleAddModel(w http.ResponseWriter, r *http.Request) error {
	var req AddModelRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		return err
	}
	if len(req.State) == 0 {
		return errf(http.StatusBadRequest, "models: empty state blob")
	}
	sd, err := nn.StateDictFromBytes(req.State)
	if err != nil {
		return errf(http.StatusBadRequest, "models: %v", err)
	}
	if err := s.cfg.Zoo.Add(req.ID, sd, req.PDF, req.Meta); err != nil {
		// Only a duplicate ID is a conflict; everything else Add rejects
		// (empty ID, invalid PDF) is a malformed request.
		if errors.Is(err, fairms.ErrDuplicateID) {
			return errc(http.StatusConflict, CodeConflict, "%v", err)
		}
		return errf(http.StatusBadRequest, "%v", err)
	}
	s.zooGen.Add(1) // recommend results computed against the old zoo are stale
	return writeJSON(w, ModelInfo{ID: req.ID, K: len(req.PDF), Meta: req.Meta})
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) error {
	ids := s.cfg.Zoo.IDs()
	models := make([]ModelInfo, 0, len(ids))
	for _, id := range ids {
		rec, err := s.cfg.Zoo.Get(id)
		if err != nil {
			continue // removed between IDs() and Get()
		}
		models = append(models, ModelInfo{
			ID: rec.ID, K: len(rec.TrainPDF), Meta: rec.Meta, AddedAt: rec.AddedAt,
		})
	}
	return writeJSON(w, ModelsResponse{Models: models})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) error {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return errf(http.StatusBadRequest, "recommend: reading body: %v", err)
	}
	key := fmt.Sprintf("rec:%d:%s", s.zooGen.Load(), bodyHash(body))
	v, err := s.cache.do(r.Context(), key, func(ctx context.Context) (any, error) {
		var req RecommendRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, errf(http.StatusBadRequest, "recommend: decoding request: %v", err)
		}
		_, sp := obs.StartSpan(ctx, "zoo_rank")
		ranked, err := s.cfg.Zoo.Rank(req.PDF)
		sp.End()
		if err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		if len(ranked) == 0 {
			return RecommendResponse{OK: false}, nil
		}
		best := ranked[0]
		if req.MaxJSD > 0 && best.JSD > req.MaxJSD {
			return RecommendResponse{JSD: best.JSD, OK: false}, nil
		}
		return RecommendResponse{ID: best.Record.ID, JSD: best.JSD, OK: true}, nil
	})
	if err != nil {
		return err
	}
	return writeJSON(w, v)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	rec, err := s.cfg.Zoo.Get(id)
	if err != nil {
		return errf(http.StatusNotFound, "%v", err)
	}
	// Encode to memory first: once bytes hit the ResponseWriter the status
	// is committed, and a mid-stream encode failure could no longer be
	// reported as an error response.
	blob, err := rec.State.Bytes()
	if err != nil {
		return errf(http.StatusInternalServerError, "encoding checkpoint %s: %v", id, err)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	// A write failure here means the client went away; the response is
	// already committed, so there is no error body left to send.
	w.Write(blob)
	return nil
}

// ---------------------------------------------------------------------------
// Training-plane handlers

// handleTrainSubmit enqueues a server-side training job. Queue saturation
// surfaces as 429 — training backpressure, distinct from the global
// admission gate — and an unfitted clustering model as 409 (the job could
// only fail asynchronously on its PDF computation otherwise).
func (s *Server) handleTrainSubmit(w http.ResponseWriter, r *http.Request) error {
	var req TrainRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		return err
	}
	if s.clusterK.Load() == 0 {
		return errc(http.StatusConflict, CodeNotFitted, "train: %v", fairds.ErrNotFitted)
	}
	spec := trainer.Spec{
		Dataset:     req.Dataset,
		Model:       req.Model,
		Hidden:      req.Hidden,
		Epochs:      req.Epochs,
		BatchSize:   req.BatchSize,
		LR:          req.LR,
		TargetLoss:  req.TargetLoss,
		Patience:    req.Patience,
		MaxJSD:      req.MaxJSD,
		ValFraction: req.ValFraction,
		Seed:        req.Seed,
		ModelID:     req.ModelID,
		Meta:        req.Meta,
	}
	if len(req.Samples) > 0 {
		samples, err := decodeSamples(req.Samples)
		if err != nil {
			return err
		}
		spec.Samples = samples
	}
	st, err := s.trainer.Submit(spec)
	switch {
	case errors.Is(err, trainer.ErrQueueFull):
		return errf(http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, trainer.ErrShutdown):
		return errf(http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		return errf(http.StatusBadRequest, "%v", err)
	}
	return writeJSON(w, wireTrainJob(st, true))
}

func (s *Server) handleTrainList(w http.ResponseWriter, r *http.Request) error {
	statuses := s.trainer.List()
	resp := TrainListResponse{Jobs: make([]TrainJob, len(statuses))}
	for i, st := range statuses {
		resp.Jobs[i] = wireTrainJob(st, false) // curves only in the detail view
	}
	return writeJSON(w, resp)
}

func (s *Server) handleTrainGet(w http.ResponseWriter, r *http.Request) error {
	st, err := s.trainer.Get(r.PathValue("id"))
	if err != nil {
		return errf(http.StatusNotFound, "%v", err)
	}
	return writeJSON(w, wireTrainJob(st, true))
}

// handleTrainCancel serves POST /v1/train/{id}:cancel. ServeMux wildcards
// span whole segments, so the route matches POST /v1/train/{anything} and
// the ":cancel" action suffix is peeled off here.
func (s *Server) handleTrainCancel(w http.ResponseWriter, r *http.Request) error {
	id, ok := strings.CutSuffix(r.PathValue("id"), ":cancel")
	if !ok {
		return errf(http.StatusNotFound, "train: POST %s is not an action (want {id}:cancel)", r.URL.Path)
	}
	st, err := s.trainer.Cancel(id)
	if err != nil {
		return errf(http.StatusNotFound, "%v", err)
	}
	return writeJSON(w, wireTrainJob(st, true))
}

// wireTrainJob converts a trainer status snapshot to its wire form.
func wireTrainJob(st *trainer.Status, withCurves bool) TrainJob {
	j := TrainJob{
		ID:          st.ID,
		State:       string(st.State),
		Model:       st.Model,
		Dataset:     st.Dataset,
		Samples:     st.Samples,
		Warm:        st.Warm,
		Foundation:  st.Foundation,
		JSD:         st.JSD,
		Epochs:      st.Epochs,
		Converged:   st.Converged,
		ConvergedAt: st.ConvergedAt,
		ModelID:     st.ModelID,
		Error:       st.Err,
		SubmittedAt: st.SubmittedAt,
		StartedAt:   st.StartedAt,
		FinishedAt:  st.FinishedAt,
	}
	if withCurves {
		j.TrainLoss = st.TrainLoss
		j.ValLoss = st.ValLoss
	}
	return j
}

// ---------------------------------------------------------------------------
// Operational handlers

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) error {
	// No dsMu here: clusterK is the server's own mirror, and StoreCount
	// only touches the internally synchronized store — so liveness answers
	// even while a bootstrap fit holds dsMu exclusively.
	return writeJSON(w, HealthResponse{
		Status:  "ok",
		K:       int(s.clusterK.Load()),
		Models:  s.cfg.Zoo.Len(),
		Samples: s.cfg.DS.StoreCount(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	return writeJSON(w, s.Stats())
}

// handleMetrics serves the Prometheus text exposition. Every /statsz
// counter is a registry member (registerMetrics), so the two surfaces
// always agree.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	return s.reg.WritePrometheus(w)
}

// handleSlow serves the slow-request ring: the retained span trees of the
// slowest recent requests, slowest first. 404 when the log is disabled
// (SlowThreshold <= 0), so probers can distinguish "off" from "empty".
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) error {
	entries, err := s.slow.Snapshot()
	if errors.Is(err, obs.ErrDisabled) {
		return errf(http.StatusNotFound, "%v", err)
	}
	if err != nil {
		return errf(http.StatusInternalServerError, "%v", err)
	}
	return writeJSON(w, SlowzResponse{
		ThresholdMS: durMS(s.slow.Threshold()),
		Total:       s.slow.Total(),
		Entries:     entries,
	})
}

// ---------------------------------------------------------------------------
// Helpers

// serviceError maps library errors to HTTP status codes: an unfitted
// clustering model is the caller's sequencing problem (the service is up
// but not ready for lookups — 409), everything else is internal (500).
func serviceError(err error) error {
	var he *httpError
	if errors.As(err, &he) {
		return err
	}
	if errors.Is(err, fairds.ErrNotFitted) {
		return errc(http.StatusConflict, CodeNotFitted, "%v", err)
	}
	return errf(http.StatusInternalServerError, "%v", err)
}

// decodeSamples converts and validates untrusted wire samples. Every
// data-plane handler passes its input through here, so a shape/dtype/
// payload mismatch becomes a 400 instead of a panic deeper in the stack
// (codec.Sample.Floats indexes Data by shape, and Dtype.Size panics on
// unknown dtypes).
func decodeSamples(ws []Sample) ([]*codec.Sample, error) {
	if len(ws) == 0 {
		return nil, errf(http.StatusBadRequest, "empty sample batch")
	}
	out := make([]*codec.Sample, len(ws))
	for i := range ws {
		s, err := decodeSample(ws[i])
		if err != nil {
			return nil, errf(http.StatusBadRequest, "sample %d: %v", i, err)
		}
		out[i] = s
	}
	return out, nil
}

// decodeSample converts and validates one untrusted wire sample. The batch
// endpoint calls it per document so one bad sample yields a DocError
// instead of failing the whole request.
func decodeSample(w Sample) (*codec.Sample, error) {
	if d := codec.Dtype(w.Dtype); d < codec.U8 || d > codec.F64 {
		return nil, fmt.Errorf("unknown dtype %d", w.Dtype)
	}
	s := w.ToCodec()
	if s.Elems() <= 0 {
		return nil, fmt.Errorf("shape %v has no elements", s.Shape)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// durMS converts a duration to fractional milliseconds for wire stats.
func durMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func decodeJSON(r io.Reader, v any) error {
	if err := json.NewDecoder(r).Decode(v); err != nil {
		return errf(http.StatusBadRequest, "decoding request: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// writeError writes the unified error envelope with retryability derived
// from the status. All non-2xx responses leave through here (or through
// the exported WriteError it delegates to — the errboundary analyzer
// enforces that).
func writeError(w http.ResponseWriter, code int, errCode ErrorCode, msg string) {
	WriteError(w, code, ErrorBody{Code: errCode, Message: msg, Retryable: retryableStatus(code)})
}

func bodyHash(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// EndpointNames lists the registered metric names, sorted — handy for
// stable /statsz rendering in tests and tooling.
func (s *Server) EndpointNames() []string {
	names := make([]string, 0, len(s.metrics))
	for name := range s.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
