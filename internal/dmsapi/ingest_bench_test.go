package dmsapi

import (
	"context"
	"math/rand"
	"testing"

	"fairdms/internal/codec"
	"fairdms/internal/datagen"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/fairds"
)

// benchIngestServer boots a fresh daemon-shaped server over TCP and
// bootstrap-fits it, so each benchmark iteration measures steady-state
// ingest rather than the one-time k-means fit. The data service uses the
// same autoencoder embedder a default dmsd runs (not the toy test
// embedder), so per-request embedding cost is the real thing.
func benchIngestServer(b *testing.B, docs []*codec.Sample) *Client {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	store := docstore.NewStore().Collection("peaks")
	emb := embed.Scaled{E: embed.NewAutoencoder(rng, docs[0].Elems(), 64, 8), Factor: 1.0 / 255}
	ds, err := fairds.New(emb, store, fairds.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		DS:         ds,
		Zoo:        benchZoo(b, 1, 4),
		BootstrapK: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Shutdown(context.Background()) })
	client, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(client.Close)
	if _, err := client.Ingest("bootstrap", docs[:32]); err != nil {
		b.Fatal(err)
	}
	return client
}

// benchDocs draws Bragg peak patches quantized to 8-bit counts — the form
// a real detector readout ships (cf. CookieRegime's quantization and
// dmsd's -embed-scale 1/255 flag for exactly this data).
func benchDocs(n int) []*codec.Sample {
	rng := rand.New(rand.NewSource(9))
	r := datagen.DefaultBraggRegime()
	r.Patch = 11
	docs := r.Generate(rng, n)
	for i, d := range docs {
		vals := d.Floats()
		maxV := 0.0
		for _, v := range vals {
			if v > maxV {
				maxV = v
			}
		}
		scale := 255 / maxV
		for j := range vals {
			vals[j] = vals[j] * scale
		}
		docs[i] = codec.SampleFromFloats(vals, d.Shape, codec.U8, d.Label)
	}
	return docs
}

// BenchmarkIngest1k is the acceptance benchmark for the batch ingest path:
// landing 1000 documents through 1000 serial single-doc requests vs one
// ingest:batch call vs the bounded-in-flight BatchIngester. The batch path
// must be ≥ 5× faster end-to-end than the serial path (round-trip
// amortization plus the pipelined embed→store flow).
func BenchmarkIngest1k(b *testing.B) {
	const n = 1000
	docs := benchDocs(n)

	b.Run("serial", func(b *testing.B) {
		client := benchIngestServer(b, docs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				if _, err := client.Ingest("bench", docs[j:j+1]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("batch", func(b *testing.B) {
		client := benchIngestServer(b, docs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.IngestBatch("bench", docs)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Inserted != n {
				b.Fatalf("inserted %d, want %d", resp.Inserted, n)
			}
		}
	})

	b.Run("batch-ingester", func(b *testing.B) {
		client := benchIngestServer(b, docs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ing := client.NewBatchIngester("bench", BatchIngesterConfig{BatchSize: 128, MaxInFlight: 4})
			for j := 0; j < n; j++ {
				ing.Add(docs[j])
			}
			sum, err := ing.Close()
			if err != nil {
				b.Fatal(err)
			}
			if sum.Inserted != n {
				b.Fatalf("inserted %d, want %d", sum.Inserted, n)
			}
		}
	})
}
