package dmsapi

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"fairdms/internal/docstore"
	"fairdms/internal/fairds"
	"fairdms/internal/obs"
	"fairdms/internal/wal"
)

// startDurableServer boots a Server whose data service sits on a
// WAL-durable docstore, with the WalStats hook wired the way cmd/dmsd
// wires it.
func startDurableServer(t *testing.T) (*Server, *Client, *docstore.DurableStore) {
	t.Helper()
	ds, err := docstore.OpenDurable(docstore.DurableOptions{Dir: t.TempDir(), Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	svc, err := fairds.New(idEmbedder{dim: 6}, ds.Collection("peaks"), fairds.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, client := startServer(t, ServerConfig{
		DS: svc,
		WalStats: func() WalStats {
			w := ds.WalStats()
			return WalStats{
				Enabled: w.Enabled, Policy: w.Policy,
				Appends: w.Appends, AppendedBytes: w.AppendedBytes, Syncs: w.Syncs,
				Replays: w.Replays, ReplayedRecords: w.ReplayedRecords,
				ReplayedTxns: w.ReplayedTxns, ReplaySkippedOps: w.ReplaySkippedOps,
				TornTruncations: w.TornTruncations, CorruptRecords: w.CorruptRecords,
				Rotations: w.Rotations, Compactions: w.Compactions,
				SegmentsRemoved: w.SegmentsRemoved,
			}
		},
	})
	return srv, client, ds
}

// TestStatsReportsWal: after ingesting through a WAL-durable store, the
// wal key appears on /statsz with live append counters.
func TestStatsReportsWal(t *testing.T) {
	_, client, _ := startDurableServer(t)
	a, _ := twoRegimes(17, 24)
	if _, err := client.Ingest("regime-a", a); err != nil {
		t.Fatal(err)
	}
	st, err := client.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Wal == nil {
		t.Fatal("stats.wal missing on a WAL-backed server")
	}
	if !st.Wal.Enabled || st.Wal.Policy != "always" {
		t.Fatalf("wal stats = %+v; want enabled with policy always", st.Wal)
	}
	if st.Wal.Appends == 0 || st.Wal.AppendedBytes == 0 || st.Wal.Syncs == 0 {
		t.Fatalf("ingest produced no WAL traffic: %+v", st.Wal)
	}
}

// TestStatsOmitsWalWithoutHook: a plain in-memory server has no wal key.
func TestStatsOmitsWalWithoutHook(t *testing.T) {
	_, client := startServer(t, ServerConfig{})
	if _, err := client.Health(); err != nil {
		t.Fatal(err)
	}
	st, err := client.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Wal != nil {
		t.Fatalf("stats.wal = %+v on a memory-only server; want absent", st.Wal)
	}
}

// TestMetricszExposesWalFamilies: the dms_wal_* counter families appear
// on /metricsz when (and only when) the WalStats hook is installed.
func TestMetricszExposesWalFamilies(t *testing.T) {
	srv, client, _ := startDurableServer(t)
	a, _ := twoRegimes(19, 24)
	if _, err := client.Ingest("regime-a", a); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("invalid exposition:\n%s\nerror: %v", body, err)
	}
	for _, fam := range []string{
		"dms_wal_appends_total", "dms_wal_bytes_total", "dms_wal_syncs_total",
		"dms_wal_replays_total", "dms_wal_replayed_records_total",
		"dms_wal_torn_truncations_total", "dms_wal_corrupt_records_total",
		"dms_wal_compactions_total",
	} {
		if !strings.Contains(string(body), "# TYPE "+fam+" counter") {
			t.Errorf("family %s missing from /metricsz", fam)
		}
	}

	plain, _ := startServer(t, ServerConfig{})
	resp2, err := http.Get("http://" + plain.Addr() + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(body2), "dms_wal_") {
		t.Error("dms_wal_* families present on a memory-only server")
	}
}
