package flow

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func noop(ctx context.Context, rc *RunContext) error { return nil }

func TestValidateCatchesDAGErrors(t *testing.T) {
	cases := []struct {
		name string
		f    *Flow
	}{
		{"empty name", New("f").Add(Action{Run: noop})},
		{"nil run", New("f").Add(Action{Name: "a"})},
		{"duplicate", New("f").Add(Action{Name: "a", Run: noop}).Add(Action{Name: "a", Run: noop})},
		{"unknown dep", New("f").Add(Action{Name: "a", Run: noop, DependsOn: []string{"zz"}})},
		{"cycle", New("f").
			Add(Action{Name: "a", Run: noop, DependsOn: []string{"b"}}).
			Add(Action{Name: "b", Run: noop, DependsOn: []string{"a"}})},
	}
	for _, tc := range cases {
		if err := tc.f.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", tc.name)
		}
	}
}

func TestExecuteRespectsDependencies(t *testing.T) {
	var order []string
	var mu atomic.Int64
	record := func(name string) func(context.Context, *RunContext) error {
		return func(ctx context.Context, rc *RunContext) error {
			for !mu.CompareAndSwap(0, 1) {
			}
			order = append(order, name)
			mu.Store(0)
			return nil
		}
	}
	f := New("pipeline").
		Add(Action{Name: "c", Run: record("c"), DependsOn: []string{"a", "b"}}).
		Add(Action{Name: "a", Run: record("a")}).
		Add(Action{Name: "b", Run: record("b"), DependsOn: []string{"a"}})
	rep, err := f.Execute(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("execution order %v", order)
	}
	for _, a := range rep.Actions {
		if a.State != Succeeded {
			t.Fatalf("action %s state %s", a.Name, a.State)
		}
		if a.Duration < 0 {
			t.Fatal("negative duration")
		}
	}
}

func TestIndependentActionsRunConcurrently(t *testing.T) {
	var inFlight, peak atomic.Int64
	slow := func(ctx context.Context, rc *RunContext) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(30 * time.Millisecond)
		inFlight.Add(-1)
		return nil
	}
	f := New("par").
		Add(Action{Name: "x", Run: slow}).
		Add(Action{Name: "y", Run: slow}).
		Add(Action{Name: "z", Run: slow})
	if _, err := f.Execute(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d, want >= 2", peak.Load())
	}
}

func TestFailureSkipsDependents(t *testing.T) {
	boom := errors.New("boom")
	ran := atomic.Bool{}
	f := New("fail").
		Add(Action{Name: "a", Run: func(ctx context.Context, rc *RunContext) error { return boom }}).
		Add(Action{Name: "b", DependsOn: []string{"a"}, Run: func(ctx context.Context, rc *RunContext) error {
			ran.Store(true)
			return nil
		}}).
		Add(Action{Name: "c", DependsOn: []string{"b"}, Run: noop}).
		Add(Action{Name: "d", Run: noop}) // independent: must still run
	rep, err := f.Execute(context.Background(), nil)
	if err == nil {
		t.Fatal("expected flow error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the action error", err)
	}
	if ran.Load() {
		t.Fatal("dependent of failed action ran")
	}
	if rep.Actions["a"].State != Failed {
		t.Fatalf("a state %s", rep.Actions["a"].State)
	}
	if rep.Actions["b"].State != Skipped || rep.Actions["c"].State != Skipped {
		t.Fatalf("b/c states %s/%s, want skipped", rep.Actions["b"].State, rep.Actions["c"].State)
	}
	if rep.Actions["d"].State != Succeeded {
		t.Fatalf("independent action d state %s", rep.Actions["d"].State)
	}
	failed := rep.Failed()
	if len(failed) != 1 || failed[0] != "a" {
		t.Fatalf("Failed() = %v", failed)
	}
}

func TestRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	f := New("retry").Add(Action{
		Name: "flaky", Retries: 3,
		Run: func(ctx context.Context, rc *RunContext) error {
			if calls.Add(1) < 3 {
				return errors.New("transient")
			}
			return nil
		},
	})
	rep, err := f.Execute(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("ran %d times, want 3", calls.Load())
	}
	if rep.Actions["flaky"].Attempts != 3 {
		t.Fatalf("attempts = %d", rep.Actions["flaky"].Attempts)
	}
}

func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	f := New("retry").Add(Action{
		Name: "broken", Retries: 2,
		Run: func(ctx context.Context, rc *RunContext) error {
			calls.Add(1)
			return errors.New("permanent")
		},
	})
	if _, err := f.Execute(context.Background(), nil); err == nil {
		t.Fatal("expected failure after exhausted retries")
	}
	if calls.Load() != 3 {
		t.Fatalf("ran %d times, want 3 (1 + 2 retries)", calls.Load())
	}
}

func TestRunContextPassesArtifacts(t *testing.T) {
	f := New("ctx").
		Add(Action{Name: "produce", Run: func(ctx context.Context, rc *RunContext) error {
			rc.Set("model", "weights-v1")
			return nil
		}}).
		Add(Action{Name: "consume", DependsOn: []string{"produce"}, Run: func(ctx context.Context, rc *RunContext) error {
			if rc.MustGet("model") != "weights-v1" {
				return errors.New("artifact missing")
			}
			return nil
		}})
	if _, err := f.Execute(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestContextCancellationStopsRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	f := New("cancel").Add(Action{
		Name: "slow", Retries: 100, RetryDelay: 10 * time.Millisecond,
		Run: func(ctx context.Context, rc *RunContext) error {
			if calls.Add(1) == 1 {
				cancel()
			}
			return errors.New("always fails")
		},
	})
	if _, err := f.Execute(ctx, nil); err == nil {
		t.Fatal("expected cancellation error")
	}
	if calls.Load() > 2 {
		t.Fatalf("retried %d times after cancellation", calls.Load())
	}
}

func TestMustGetPanicsOnMissing(t *testing.T) {
	rc := NewRunContext()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing key")
		}
	}()
	rc.MustGet("nope")
}
