// Package flow is fairDMS's stand-in for the Globus Flows service
// (paper §III-C): a small DAG workflow engine. A Flow is a set of named
// actions with dependencies; Execute runs them in topological order,
// running independent actions concurrently, retrying failed actions, and
// recording per-action state and timing. Actions communicate through a
// thread-safe key/value RunContext.
//
// Flows orchestrate work executed on funcx endpoints and moved by
// transfer links; internal/experiments composes all three into the
// paper's end-to-end facility→HPC workflow timings.
package flow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is an action's lifecycle state.
type State string

// Action lifecycle states.
const (
	Pending   State = "pending"
	Running   State = "running"
	Succeeded State = "succeeded"
	Failed    State = "failed"
	Skipped   State = "skipped" // not run because a dependency failed
)

// RunContext carries artifacts between actions.
type RunContext struct {
	mu   sync.RWMutex
	vals map[string]any
}

// NewRunContext returns an empty context.
func NewRunContext() *RunContext {
	return &RunContext{vals: make(map[string]any)}
}

// Set stores a value under key.
func (rc *RunContext) Set(key string, v any) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.vals[key] = v
}

// Get returns the value under key and whether it exists.
func (rc *RunContext) Get(key string) (any, bool) {
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	v, ok := rc.vals[key]
	return v, ok
}

// MustGet returns the value under key, panicking if absent — for actions
// whose dependencies are guaranteed by the DAG to have stored it.
func (rc *RunContext) MustGet(key string) any {
	v, ok := rc.Get(key)
	if !ok {
		panic(fmt.Sprintf("flow: missing context key %q", key))
	}
	return v
}

// Action is one node of the workflow DAG.
type Action struct {
	Name       string
	DependsOn  []string
	Retries    int           // additional attempts after a failure
	RetryDelay time.Duration // pause between attempts
	Run        func(ctx context.Context, rc *RunContext) error
}

// Flow is an immutable-once-executed DAG of actions.
type Flow struct {
	Name    string
	actions []Action
}

// New returns an empty flow.
func New(name string) *Flow { return &Flow{Name: name} }

// Add appends an action and returns the flow for chaining.
func (f *Flow) Add(a Action) *Flow {
	f.actions = append(f.actions, a)
	return f
}

// ActionReport records one action's outcome.
type ActionReport struct {
	Name     string
	State    State
	Attempts int
	Duration time.Duration
	Err      error
}

// Report summarizes a flow execution.
type Report struct {
	Flow     string
	Actions  map[string]*ActionReport
	Duration time.Duration
}

// Failed returns the names of failed actions.
func (r *Report) Failed() []string {
	var out []string
	for name, a := range r.Actions {
		if a.State == Failed {
			out = append(out, name)
		}
	}
	return out
}

// Validate checks the DAG for duplicate names, unknown dependencies, and
// cycles.
func (f *Flow) Validate() error {
	byName := make(map[string]*Action, len(f.actions))
	for i := range f.actions {
		a := &f.actions[i]
		if a.Name == "" {
			return errors.New("flow: action with empty name")
		}
		if a.Run == nil {
			return fmt.Errorf("flow: action %q has no Run function", a.Name)
		}
		if _, dup := byName[a.Name]; dup {
			return fmt.Errorf("flow: duplicate action name %q", a.Name)
		}
		byName[a.Name] = a
	}
	for _, a := range f.actions {
		for _, dep := range a.DependsOn {
			if _, ok := byName[dep]; !ok {
				return fmt.Errorf("flow: action %q depends on unknown action %q", a.Name, dep)
			}
		}
	}
	// Cycle detection via Kahn's algorithm.
	indeg := make(map[string]int, len(f.actions))
	dependents := make(map[string][]string)
	for _, a := range f.actions {
		indeg[a.Name] = len(a.DependsOn)
		for _, dep := range a.DependsOn {
			dependents[dep] = append(dependents[dep], a.Name)
		}
	}
	var queue []string
	for name, d := range indeg {
		if d == 0 {
			queue = append(queue, name)
		}
	}
	seen := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		seen++
		for _, m := range dependents[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if seen != len(f.actions) {
		return fmt.Errorf("flow: %q contains a dependency cycle", f.Name)
	}
	return nil
}

// Execute validates and runs the flow. Independent actions run
// concurrently. An action whose dependency failed is marked Skipped.
// Execute returns the report and the first action error encountered
// (nil if every action succeeded).
func (f *Flow) Execute(ctx context.Context, rc *RunContext) (*Report, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if rc == nil {
		rc = NewRunContext()
	}
	start := time.Now()
	report := &Report{Flow: f.Name, Actions: make(map[string]*ActionReport, len(f.actions))}
	for _, a := range f.actions {
		report.Actions[a.Name] = &ActionReport{Name: a.Name, State: Pending}
	}

	type outcome struct {
		name string
		err  error
	}
	remaining := make(map[string]*Action, len(f.actions))
	blocked := make(map[string]int, len(f.actions))
	dependents := make(map[string][]string)
	for i := range f.actions {
		a := &f.actions[i]
		remaining[a.Name] = a
		blocked[a.Name] = len(a.DependsOn)
		for _, dep := range a.DependsOn {
			dependents[dep] = append(dependents[dep], a.Name)
		}
	}

	results := make(chan outcome)
	running := 0
	failedDeps := make(map[string]bool)

	launch := func(a *Action) {
		report.Actions[a.Name].State = Running
		running++
		go func() {
			err := runWithRetries(ctx, a, rc, report.Actions[a.Name])
			results <- outcome{name: a.Name, err: err}
		}()
	}
	// Seed with ready actions.
	for name, a := range remaining {
		if blocked[name] == 0 {
			launch(a)
			delete(remaining, name)
		}
	}

	var firstErr error
	for running > 0 {
		res := <-results
		running--
		rep := report.Actions[res.name]
		if res.err != nil {
			rep.State = Failed
			rep.Err = res.err
			if firstErr == nil {
				firstErr = fmt.Errorf("flow: action %q: %w", res.name, res.err)
			}
			// Transitively skip all dependents.
			var skip func(string)
			skip = func(name string) {
				for _, m := range dependents[name] {
					if failedDeps[m] {
						continue
					}
					failedDeps[m] = true
					if _, ok := remaining[m]; ok {
						report.Actions[m].State = Skipped
						delete(remaining, m)
					}
					skip(m)
				}
			}
			skip(res.name)
		} else {
			rep.State = Succeeded
			for _, m := range dependents[res.name] {
				blocked[m]--
				if a, ok := remaining[m]; ok && blocked[m] == 0 && !failedDeps[m] {
					launch(a)
					delete(remaining, m)
				}
			}
		}
	}
	report.Duration = time.Since(start)
	return report, firstErr
}

func runWithRetries(ctx context.Context, a *Action, rc *RunContext, rep *ActionReport) error {
	start := time.Now()
	defer func() { rep.Duration = time.Since(start) }()
	var err error
	for attempt := 0; attempt <= a.Retries; attempt++ {
		rep.Attempts = attempt + 1
		if err = ctx.Err(); err != nil {
			return err
		}
		if err = a.Run(ctx, rc); err == nil {
			return nil
		}
		if attempt < a.Retries && a.RetryDelay > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(a.RetryDelay):
			}
		}
	}
	return err
}
