// Package integration exercises fairDMS across module boundaries the way a
// deployment would: remote document store over TCP, self-supervised
// embeddings, zoo persistence, workflow orchestration, and the end-to-end
// rapid-training path.
package integration

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/core"
	"fairdms/internal/datagen"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
	"fairdms/internal/flow"
	"fairdms/internal/funcx"
	"fairdms/internal/models"
	"fairdms/internal/nn"
	"fairdms/internal/tensor"
	"fairdms/internal/transfer"
)

const patch = 9

// buildRemoteSystem assembles a full fairDMS against a TCP docstore.
func buildRemoteSystem(t *testing.T, faulty bool) (*core.System, [][]*codec.Sample, *rand.Rand) {
	t.Helper()
	cfg := docstore.ServerConfig{}
	if faulty {
		cfg.FaultRate = 0.05
		cfg.FaultSeed = 99
	}
	srv := docstore.NewServer(docstore.NewStore(), cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := docstore.Dial(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	rng := rand.New(rand.NewSource(61))
	schedule := datagen.DefaultBraggDrift(100)
	schedule.Base.Patch = patch
	seq := schedule.BraggExperiment(62, 4, 70)

	var hist []*codec.Sample
	for _, d := range seq[:3] {
		hist = append(hist, d...)
	}
	hx, err := fairds.Collate(hist)
	if err != nil {
		t.Fatal(err)
	}
	aug := embed.ImageAugmenter{H: patch, W: patch, Noise: 0.1, ScaleRange: 0.1}
	byol := embed.NewBYOL(rng, hx.Dim(1), 64, 8, aug.View, 0.95)
	byol.Train(hx, embed.TrainConfig{Epochs: 10, BatchSize: 32, LR: 2e-3, Seed: 63})

	ds, err := fairds.New(byol, fairds.RemoteCollection{Client: client, Name: "bragg"}, fairds.Config{Seed: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.FitClustersK(hx, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.IngestLabeled(hist, "history"); err != nil {
		t.Fatal(err)
	}

	zoo := fairms.NewZoo()
	m := models.NewBraggNN(rng, patch)
	hy := labelTensor(hist)
	nn.Fit(m.Net, nn.NewAdam(m.Net.Params(), 2e-3), hx, m.Targets(hy), hx, m.Targets(hy),
		nn.TrainConfig{Epochs: 30, BatchSize: 16, Seed: 65})
	pdf, err := ds.DatasetPDF(hx)
	if err != nil {
		t.Fatal(err)
	}
	if err := zoo.Add("foundation", m.Net.State(), pdf, nil); err != nil {
		t.Fatal(err)
	}

	sys, err := core.New(ds, zoo, core.Config{Seed: 66})
	if err != nil {
		t.Fatal(err)
	}
	return sys, seq, rng
}

func labelTensor(samples []*codec.Sample) *tensor.Tensor {
	y := tensor.New(len(samples), 2)
	for i, s := range samples {
		y.Set(s.Label[0], i, 0)
		y.Set(s.Label[1], i, 1)
	}
	return y
}

func braggRequest(rng *rand.Rand, input []*codec.Sample, id string) core.Request {
	return core.Request{
		Input: input,
		NewModel: func() *nn.Model {
			return models.NewBraggNN(rng, patch).Net
		},
		Prep: func(samples []*codec.Sample) (*tensor.Tensor, *tensor.Tensor, error) {
			x, err := fairds.Collate(samples)
			if err != nil {
				return nil, nil, err
			}
			helper := &models.BraggNN{Patch: patch}
			return x, helper.Targets(labelTensor(samples)), nil
		},
		Train:   nn.TrainConfig{Epochs: 15, BatchSize: 16, Seed: 67},
		ModelID: id,
	}
}

func TestRapidTrainOverRemoteStore(t *testing.T) {
	sys, seq, rng := buildRemoteSystem(t, false)
	model, rep, err := sys.RapidTrain(braggRequest(rng, seq[3], "updated"))
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || rep.Labeled == 0 {
		t.Fatalf("remote rapid train produced no data: %+v", rep)
	}
	if !rep.FineTuned || rep.Foundation != "foundation" {
		t.Fatalf("expected fine-tuning from the seeded foundation, got %+v", rep)
	}
	// The updated surrogate is accurate on the new data.
	x, y := mustTensors(t, seq[3])
	final := &models.BraggNN{Net: model, Patch: patch}
	if errPx := final.MeanErrorPx(x, y); errPx > 1.5 {
		t.Fatalf("updated model error %.3f px over remote store", errPx)
	}
}

func TestRapidTrainSurvivesFaultyStore(t *testing.T) {
	// 5% of store requests drop the connection; the pooled client's retry
	// must keep the end-to-end path alive.
	sys, seq, rng := buildRemoteSystem(t, true)
	_, rep, err := sys.RapidTrain(braggRequest(rng, seq[3], "updated-faulty"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Labeled == 0 {
		t.Fatal("no labels retrieved through the faulty store")
	}
}

func mustTensors(t *testing.T, samples []*codec.Sample) (*tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	x, err := fairds.Collate(samples)
	if err != nil {
		t.Fatal(err)
	}
	return x, labelTensor(samples)
}

func TestZooPersistenceAcrossRestart(t *testing.T) {
	sys, seq, rng := buildRemoteSystem(t, false)
	if _, _, err := sys.RapidTrain(braggRequest(rng, seq[3], "gen2")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "zoo.gob")
	if err := sys.Zoo.Save(path); err != nil {
		t.Fatal(err)
	}
	// "Restart": reload the zoo and recommend for the same data.
	zoo2, err := fairms.LoadZoo(path)
	if err != nil {
		t.Fatal(err)
	}
	if zoo2.Len() != 2 {
		t.Fatalf("reloaded zoo has %d entries", zoo2.Len())
	}
	x, _ := mustTensors(t, seq[3])
	pdf, err := sys.DS.DatasetPDF(x)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := zoo2.Recommend(pdf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Record.ID != "gen2" {
		t.Fatalf("reloaded zoo recommends %s, want the freshly trained gen2", rec.Record.ID)
	}
	// Reloaded weights are usable.
	m := models.NewBraggNN(rng, patch)
	if err := m.Net.LoadState(rec.Record.State); err != nil {
		t.Fatal(err)
	}
}

func TestOrchestratedUpdateFlow(t *testing.T) {
	// The cmd/fairdms workflow in miniature: acquire → transfer →
	// rapid-train → transfer-model, driven by the flow engine with funcx
	// endpoints and the simulated mover.
	sys, seq, rng := buildRemoteSystem(t, false)

	facility := transfer.NewEndpoint("facility")
	hpc := transfer.NewEndpoint("hpc")
	mover := transfer.NewService(0)
	registry := funcx.NewRegistry()

	if err := registry.Register("acquire", func(ctx context.Context, in any) (any, error) {
		var payload []byte
		for _, s := range seq[3] {
			raw, err := (codec.Raw{}).Encode(s)
			if err != nil {
				return nil, err
			}
			var lenb [4]byte
			lenb[0], lenb[1], lenb[2], lenb[3] = byte(len(raw)), byte(len(raw)>>8), byte(len(raw)>>16), byte(len(raw)>>24)
			payload = append(payload, lenb[:]...)
			payload = append(payload, raw...)
		}
		facility.Put("scan.dat", payload)
		return len(seq[3]), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := registry.Register("rapid-train", func(ctx context.Context, in any) (any, error) {
		raw, err := hpc.Get("scan.dat")
		if err != nil {
			return nil, err
		}
		var samples []*codec.Sample
		for len(raw) >= 4 {
			n := int(raw[0]) | int(raw[1])<<8 | int(raw[2])<<16 | int(raw[3])<<24
			raw = raw[4:]
			s, err := (codec.Raw{}).Decode(raw[:n])
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
			raw = raw[n:]
		}
		model, rep, err := sys.RapidTrain(braggRequest(rng, samples, "flow-model"))
		if err != nil {
			return nil, err
		}
		state, err := model.State().Bytes()
		if err != nil {
			return nil, err
		}
		hpc.Put("model.sd", state)
		return rep, nil
	}); err != nil {
		t.Fatal(err)
	}

	edge := funcx.NewEndpoint("edge", registry, 1, 4)
	defer edge.Close()
	compute := funcx.NewEndpoint("compute", registry, 1, 4)
	defer compute.Close()

	wf := flow.New("update")
	wf.Add(flow.Action{Name: "acquire", Run: func(ctx context.Context, rc *flow.RunContext) error {
		_, err := edge.Call(ctx, "acquire", nil)
		return err
	}})
	wf.Add(flow.Action{Name: "transfer-data", DependsOn: []string{"acquire"}, Retries: 1,
		Run: func(ctx context.Context, rc *flow.RunContext) error {
			_, err := mover.Transfer(ctx, facility, hpc, "scan.dat")
			return err
		}})
	wf.Add(flow.Action{Name: "rapid-train", DependsOn: []string{"transfer-data"},
		Run: func(ctx context.Context, rc *flow.RunContext) error {
			rep, err := compute.Call(ctx, "rapid-train", nil)
			if err != nil {
				return err
			}
			rc.Set("report", rep)
			return nil
		}})
	wf.Add(flow.Action{Name: "transfer-model", DependsOn: []string{"rapid-train"},
		Run: func(ctx context.Context, rc *flow.RunContext) error {
			_, err := mover.Transfer(ctx, hpc, facility, "model.sd")
			return err
		}})

	rc := flow.NewRunContext()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	report, err := wf.Execute(ctx, rc)
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range report.Actions {
		if a.State != flow.Succeeded {
			t.Fatalf("action %s finished %s", name, a.State)
		}
	}
	rep, ok := rc.MustGet("report").(*core.Report)
	if !ok {
		t.Fatalf("unexpected report type")
	}
	if !rep.FineTuned {
		t.Fatal("orchestrated run did not fine-tune")
	}
	// The model arrived back at the facility and deserializes.
	raw, err := facility.Get("model.sd")
	if err != nil {
		t.Fatal(err)
	}
	sd, err := nn.StateDictFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	m := models.NewBraggNN(rng, patch)
	if err := m.Net.LoadState(sd); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Zoo.Get("flow-model"); err != nil {
		t.Fatal("flow-trained model missing from zoo")
	}
	_ = fmt.Sprint(report.Duration)
}
