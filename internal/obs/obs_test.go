package obs

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("", true)
	ctx := NewContext(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "request")
	ctx2, embed := StartSpan(ctx1, "embed")
	_, inner := StartSpan(ctx2, "encode")
	inner.End()
	embed.End()
	_, probe := StartSpan(ctx1, "index_probe")
	probe.End()
	root.End()

	d := tr.Dump()
	if d.ID == "" || len(d.ID) != 16 {
		t.Fatalf("generated id = %q, want 16 hex chars", d.ID)
	}
	if len(d.Spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(d.Spans), d.Spans)
	}
	wantParents := map[string]string{"request": "", "embed": "request", "encode": "embed", "index_probe": "request"}
	byIdx := d.Spans
	for _, sp := range d.Spans {
		var parent string
		if sp.Parent >= 0 {
			parent = byIdx[sp.Parent].Name
		}
		if wantParents[sp.Name] != parent {
			t.Errorf("span %s has parent %q, want %q", sp.Name, parent, wantParents[sp.Name])
		}
	}
	names := d.SpanNames()
	if len(names) != 4 || names[0] != "request" {
		t.Errorf("SpanNames = %v", names)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Sampled() {
		t.Error("nil trace should be inert")
	}
	tr.Dump() // must not panic
	ctx := NewContext(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Error("nil trace must not be stored in context")
	}
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil || ctx2 != ctx {
		t.Error("StartSpan without a trace must be inert")
	}
	sp.End() // nil span End must not panic
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("", false)
	ctx := NewContext(context.Background(), tr)
	for i := 0; i < maxSpans+10; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	d := tr.Dump()
	if len(d.Spans) != maxSpans {
		t.Errorf("got %d spans, want cap %d", len(d.Spans), maxSpans)
	}
	if d.Dropped != 10 {
		t.Errorf("dropped = %d, want 10", d.Dropped)
	}
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	id, sample := ParseTraceHeader(FormatTraceHeader("deadbeef00112233", true))
	if id != "deadbeef00112233" || !sample {
		t.Errorf("roundtrip = (%q, %v)", id, sample)
	}
	id, sample = ParseTraceHeader("abc123")
	if id != "abc123" || sample {
		t.Errorf("plain id = (%q, %v)", id, sample)
	}
	if id, _ := ParseTraceHeader("DROP TABLE;sample"); id != "" {
		t.Errorf("hostile id survived sanitize: %q", id)
	}
	if id, _ := ParseTraceHeader(strings.Repeat("a", 100)); len(id) != 32 {
		t.Errorf("long id not truncated: %d chars", len(id))
	}
}

func TestDumpEncodeDecodeGraft(t *testing.T) {
	server := NewTrace("aa11", true)
	sctx := NewContext(context.Background(), server)
	sctx, root := StartSpan(sctx, "request")
	_, st := StartSpan(sctx, "store_fetch")
	st.End()
	root.End()
	dump, ok := DecodeDump(EncodeDump(server.Dump()))
	if !ok {
		t.Fatal("encode/decode roundtrip failed")
	}

	client := NewTrace("aa11", true)
	cctx := NewContext(context.Background(), client)
	cctx, cr := StartSpan(cctx, "client_request")
	_, rt := StartSpan(cctx, "http_roundtrip")
	time.Sleep(time.Millisecond)
	rt.End()
	cr.End()
	local := client.Dump()

	merged := Graft(local, 1, dump)
	if len(merged.Spans) != 4 {
		t.Fatalf("merged spans = %d, want 4", len(merged.Spans))
	}
	// Server root must now hang off the client's http_roundtrip span, and
	// every span must reach a root through valid parent links.
	if merged.Spans[2].Name != "request" || merged.Spans[2].Parent != 1 {
		t.Errorf("server root not grafted under http_roundtrip: %+v", merged.Spans[2])
	}
	for i, sp := range merged.Spans {
		seen := 0
		for p := sp.Parent; p != -1; p = merged.Spans[p].Parent {
			if p < 0 || p >= len(merged.Spans) || seen > len(merged.Spans) {
				t.Fatalf("span %d (%s) has broken parent chain", i, sp.Name)
			}
			seen++
		}
	}
	if _, ok := DecodeDump("{not json"); ok {
		t.Error("malformed dump decoded")
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dms_test_total", "a test counter")
	c.Add(7)
	r.CounterFunc("dms_func_total", "func-backed", func() int64 { return 42 })
	r.GaugeFunc("dms_depth", "a gauge", func() float64 { return 1.5 })
	h := r.Histogram("dms_latency_seconds", "a summary")
	h.Record(250 * time.Millisecond)
	h.Record(500 * time.Millisecond)
	vec := r.CounterVec("dms_ep_total", "per endpoint", "endpoint")
	vec.With("models.recommend").Inc()
	vec.With("data.ingest").Add(3)
	hv := r.HistogramVec("dms_ep_seconds", "per endpoint latency", "endpoint")
	hv.With("models.recommend").Record(10 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	counts, err := ValidateExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition not well formed: %v\n%s", err, out)
	}
	for fam, want := range map[string]int{
		"dms_test_total":      1,
		"dms_func_total":      1,
		"dms_depth":           1,
		"dms_latency_seconds": 6, // 4 quantiles + sum + count
		"dms_ep_total":        2,
		"dms_ep_seconds":      6,
	} {
		if counts[fam] != want {
			t.Errorf("family %s has %d samples, want %d\n%s", fam, counts[fam], want, out)
		}
	}
	for _, want := range []string{
		"# TYPE dms_test_total counter",
		"dms_test_total 7",
		"dms_func_total 42",
		"dms_depth 1.5",
		"# TYPE dms_latency_seconds summary",
		`dms_ep_total{endpoint="data.ingest"} 3`,
		"dms_latency_seconds_count 2",
		`quantile="0.999"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dms_once_total", "ok")
	mustPanic(t, "duplicate registration", func() { r.Counter("dms_once_total", "again") })
	mustPanic(t, "uppercase name", func() { r.Counter("Bad_Name", "x") })
	mustPanic(t, "dashed name", func() { r.Counter("bad-name", "x") })
	mustPanic(t, "bad label", func() { r.CounterVec("dms_vec_total", "x", "Bad") })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"dms_requests_total": true,
		"a":                  true,
		"a1_b2":              true,
		"":                   false,
		"1abc":               false,
		"_abc":               false,
		"camelCase":          false,
		"has-dash":           false,
		"has space":          false,
	} {
		if got := ValidName(name); got != want {
			t.Errorf("ValidName(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestRegistryRace pins the concurrency contract: recording into
// counters and histograms while another goroutine scrapes must be safe
// under -race and must never block either side.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dms_race_total", "x")
	h := r.Histogram("dms_race_seconds", "x")
	vec := r.CounterVec("dms_race_ep_total", "x", "endpoint")
	var depth int64
	r.CounterFunc("dms_race_func_total", "x", func() int64 { return depth })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Record(time.Duration(n) * time.Microsecond)
					vec.With([]string{"a", "b", "c"}[n%3]).Inc()
				}
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ValidateExposition(buf.Bytes()); err != nil {
			t.Fatalf("scrape %d not well formed: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSlowLog(t *testing.T) {
	l := NewSlowLog(2, 10*time.Millisecond)
	now := time.Now()
	dumped := 0
	mk := func(ms float64) func() TraceDump {
		return func() TraceDump {
			dumped++
			return TraceDump{ID: "x", Spans: []SpanDump{{Name: "request", Parent: -1, DurUS: int64(ms * 1000)}}}
		}
	}
	if l.Observe("fast.op", 5*time.Millisecond, now, mk(5)) {
		t.Error("fast request retained")
	}
	if dumped != 0 {
		t.Error("dump materialized for fast request")
	}
	l.Observe("a", 20*time.Millisecond, now, mk(20))
	l.Observe("b", 40*time.Millisecond, now, mk(40))
	l.Observe("c", 30*time.Millisecond, now, mk(30)) // evicts a
	if dumped != 3 {
		t.Errorf("dumped %d traces, want 3", dumped)
	}
	entries, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Endpoint != "b" || entries[1].Endpoint != "c" {
		t.Fatalf("snapshot = %+v, want b,c slowest-first", entries)
	}
	if l.Total() != 3 {
		t.Errorf("total = %d, want 3", l.Total())
	}

	off := NewSlowLog(4, 0)
	if off.Enabled() {
		t.Error("threshold 0 should disable")
	}
	if off.Observe("x", time.Hour, now, nil) {
		t.Error("disabled log retained an entry")
	}
	if _, err := off.Snapshot(); !errors.Is(err, ErrDisabled) {
		t.Errorf("disabled snapshot err = %v, want ErrDisabled", err)
	}
	var nilLog *SlowLog
	if nilLog.Enabled() || nilLog.Total() != 0 || nilLog.Threshold() != 0 {
		t.Error("nil SlowLog should be inert")
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	for name, bad := range map[string]string{
		"no type":        "dms_x_total 1\n",
		"dup type":       "# TYPE dms_x counter\n# TYPE dms_x counter\ndms_x 1\n",
		"bad value":      "# TYPE dms_x counter\ndms_x notanumber\n",
		"bad name":       "# TYPE Dms_X counter\nDms_X 1\n",
		"unknown type":   "# TYPE dms_x histogram2\ndms_x 1\n",
		"malformed type": "# TYPE dms_x\n",
	} {
		if _, err := ValidateExposition([]byte(bad)); err == nil {
			t.Errorf("%s: ValidateExposition accepted %q", name, bad)
		}
	}
}
