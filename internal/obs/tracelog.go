package obs

import (
	"sync"
	"time"
)

// TraceLog is the tail-based retention ring behind /debug/tracez: the
// router keeps full span trees for the requests worth keeping — slow,
// errored, or degraded — regardless of whether the client asked for
// sampling. Where SlowLog answers "what did the slowest requests do",
// TraceLog answers "show me the trace of the request that failed / ran
// degraded five minutes ago", filterable by operation, duration floor,
// and error/degraded state.

// TraceEntry is one retained request trace.
type TraceEntry struct {
	Op       string    `json:"op"`
	DurMS    float64   `json:"dur_ms"`
	At       time.Time `json:"at"`
	Error    string    `json:"error,omitempty"`
	Degraded bool      `json:"degraded,omitempty"`
	Trace    TraceDump `json:"trace"`
}

// TraceQuery filters Query results. Zero values match everything; Error
// and Degraded are tri-state (nil = don't care).
type TraceQuery struct {
	Op       string  // exact op name, "" = any
	MinMS    float64 // minimum duration
	Error    *bool   // true = only errored, false = only clean
	Degraded *bool
}

func (q TraceQuery) matches(e TraceEntry) bool {
	if q.Op != "" && e.Op != q.Op {
		return false
	}
	if e.DurMS < q.MinMS {
		return false
	}
	if q.Error != nil && (e.Error != "") != *q.Error {
		return false
	}
	if q.Degraded != nil && e.Degraded != *q.Degraded {
		return false
	}
	return true
}

// TraceLog is a bounded ring of retained traces. Safe for concurrent use;
// a nil or zero-size log is a disabled no-op.
type TraceLog struct {
	mu    sync.Mutex
	ring  []TraceEntry
	next  int
	size  int
	total int64
}

// NewTraceLog returns a ring retaining the most recent size traces.
// Non-positive size disables retention (Add no-ops, Query returns
// ErrDisabled).
func NewTraceLog(size int) *TraceLog {
	if size <= 0 {
		return &TraceLog{}
	}
	return &TraceLog{size: size, ring: make([]TraceEntry, 0, size)}
}

// Enabled reports whether the log retains anything. Nil-safe.
func (l *TraceLog) Enabled() bool { return l != nil && l.size > 0 }

// Add retains one trace, evicting the oldest when full. Nil-safe.
func (l *TraceLog) Add(e TraceEntry) {
	if !l.Enabled() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.ring) < l.size {
		l.ring = append(l.ring, e)
		return
	}
	l.ring[l.next] = e
	l.next = (l.next + 1) % l.size
}

// Total returns how many traces were ever retained (including evicted
// ones). Nil-safe.
func (l *TraceLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Query returns retained traces matching q, newest first. When the log is
// disabled it returns ErrDisabled.
func (l *TraceLog) Query(q TraceQuery) ([]TraceEntry, error) {
	if !l.Enabled() {
		return nil, ErrDisabled
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TraceEntry, 0, len(l.ring))
	// Ring order is oldest→newest starting at next; walk it backwards.
	for i := len(l.ring) - 1; i >= 0; i-- {
		e := l.ring[(l.next+i)%len(l.ring)]
		if q.matches(e) {
			out = append(out, e)
		}
	}
	return out, nil
}
