package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"fairdms/internal/hdrhist"
)

// This file is the structured side of the Prometheus-text contract:
// ValidateExposition (registry.go) checks that an exposition is well
// formed; ParseExposition turns one into a typed model that can be
// relabeled, merged, and re-rendered; RenderExposition is its inverse.
// Federate builds the fleet view the cluster router serves: every shard's
// families re-exposed with a node label, plus dms_fleet_* aggregates.

// Family is one parsed metric family: its metadata and every sample line
// that belongs to it (summary _sum/_count lines included).
type Family struct {
	Name string
	Help string
	Type string // "counter" | "gauge" | "summary"
	// Samples preserve exposition order.
	Samples []SampleLine
}

// SampleLine is one exposition sample. Suffix distinguishes a summary's
// aggregate lines ("_sum", "_count") from quantile/value lines ("").
type SampleLine struct {
	Suffix string
	Labels []Label // exposition order, quantile label included
	Value  float64
}

// Label is one label pair of a sample.
type Label struct{ Key, Value string }

// Get returns the value of the label named key ("" when absent).
func (s SampleLine) Get(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// without returns the sample's labels minus the named keys, as a stable
// grouping identity.
func (s SampleLine) without(keys ...string) []Label {
	out := make([]Label, 0, len(s.Labels))
next:
	for _, l := range s.Labels {
		for _, k := range keys {
			if l.Key == k {
				continue next
			}
		}
		out = append(out, l)
	}
	return out
}

func labelKey(labels []Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=" + l.Value
	}
	return strings.Join(parts, "\x00")
}

// ParseExposition parses Prometheus text exposition (version 0.0.4, the
// dialect WritePrometheus emits) into its family model — the inverse of
// the ValidateExposition contract: any exposition ValidateExposition
// accepts parses losslessly, and RenderExposition(ParseExposition(x))
// reproduces x byte for byte for registry-rendered input. Samples with no
// preceding # TYPE declaration, malformed label syntax, or non-numeric
// values are errors.
func ParseExposition(data []byte) ([]Family, error) {
	var fams []Family
	byName := make(map[string]int)
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", ln+1, line)
			}
			name := fields[2]
			idx, ok := byName[name]
			if !ok {
				idx = len(fams)
				byName[name] = idx
				fams = append(fams, Family{Name: name})
			}
			if fields[1] == "HELP" {
				if len(fields) == 4 {
					fams[idx].Help = unescapeHelp(fields[3])
				}
				continue
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", ln+1, line)
			}
			typ := fields[3]
			if typ != "counter" && typ != "gauge" && typ != "summary" {
				return nil, fmt.Errorf("line %d: unknown type %q", ln+1, typ)
			}
			if fams[idx].Type != "" {
				return nil, fmt.Errorf("line %d: family %q declared twice", ln+1, name)
			}
			if !ValidName(name) {
				return nil, fmt.Errorf("line %d: metric name %q not lowercase_snake", ln+1, name)
			}
			fams[idx].Type = typ
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		idx, suffix, ok := resolveFamily(byName, fams, name)
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q has no # TYPE declaration", ln+1, name)
		}
		fams[idx].Samples = append(fams[idx].Samples, SampleLine{Suffix: suffix, Labels: labels, Value: value})
	}
	for _, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("family %q has HELP but no TYPE", f.Name)
		}
	}
	return fams, nil
}

// resolveFamily maps a sample name to its declared family, peeling the
// summary _sum/_count suffixes.
func resolveFamily(byName map[string]int, fams []Family, name string) (idx int, suffix string, ok bool) {
	if idx, ok = byName[name]; ok && fams[idx].Type != "" {
		return idx, "", true
	}
	for _, sfx := range []string{"_sum", "_count"} {
		if base, found := strings.CutSuffix(name, sfx); found {
			if idx, ok = byName[base]; ok && fams[idx].Type == "summary" {
				return idx, sfx, true
			}
		}
	}
	return 0, "", false
}

// parseSample splits one sample line into name, labels, and value.
func parseSample(line string) (string, []Label, float64, error) {
	name := line
	rest := ""
	var labels []Label
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		body, tail, ok := cutLabelBody(line[i+1:])
		if !ok {
			return "", nil, 0, fmt.Errorf("sample %q has an unterminated label set", line)
		}
		var err error
		if labels, err = parseLabels(body); err != nil {
			return "", nil, 0, fmt.Errorf("sample %q: %v", line, err)
		}
		rest = tail
	} else if j := strings.IndexByte(line, ' '); j >= 0 {
		name = line[:j]
		rest = line[j:]
	}
	val := strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %v", val, err)
	}
	return name, labels, v, nil
}

// cutLabelBody splits `k="v",...}  value` into the label body and the
// trailing value, honoring escaped quotes inside label values.
func cutLabelBody(s string) (body, tail string, ok bool) {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++ // skip the escaped byte
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}

// parseLabels parses a `k="v",k2="v2"` label body.
func parseLabels(body string) ([]Label, error) {
	var labels []Label
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label near %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		rest := body[eq+2:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		labels = append(labels, Label{Key: key, Value: unescapeLabel(rest[:end])})
		body = strings.TrimPrefix(strings.TrimSpace(rest[end+1:]), ",")
		body = strings.TrimSpace(body)
	}
	return labels, nil
}

// RenderExposition writes families back in the registry's exposition
// dialect (HELP+TYPE header, 'g'-formatted values), the byte-level inverse
// of ParseExposition on registry output.
func RenderExposition(fams []Family) []byte {
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			b.WriteString(f.Name)
			b.WriteString(s.Suffix)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabel(l.Value))
				}
				b.WriteByte('}')
			}
			// Counter and summary count values are integers at the source;
			// 'g' formatting renders them without a decimal point, so the
			// round trip stays byte-identical.
			fmt.Fprintf(&b, " %s\n", formatFloat(s.Value))
		}
	}
	return []byte(b.String())
}

// unescape reverses one layer of exposition escaping (`\\`, `\"`, `\n`)
// in a single left-to-right pass; unknown escapes pass through verbatim.
func unescape(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case '"':
				b.WriteByte('"')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// unescapeLabel inverts the renderer's label encoding: escapeLabel
// followed by %q quoting — two escape layers, so two unescape passes.
func unescapeLabel(s string) string { return unescape(unescape(s)) }

// unescapeHelp inverts escapeHelp's single layer.
func unescapeHelp(s string) string { return unescape(s) }

// ---------------------------------------------------------------------------
// Federation

// NodeLabel is the label key Federate stamps on every per-shard series.
const NodeLabel = "node"

// FleetPrefix replaces the dms_ prefix on aggregate families.
const FleetPrefix = "dms_fleet_"

// NodeExposition is one shard's parsed /metricsz, tagged with the node
// identity that becomes the node label of its series.
type NodeExposition struct {
	Node     string
	Families []Family
}

// fleetName maps a source family to its aggregate: dms_requests_total →
// dms_fleet_requests_total; a non-dms_ name is prefixed whole.
func fleetName(name string) string {
	return FleetPrefix + strings.TrimPrefix(name, "dms_")
}

// summarySeries accumulates one label-set's summary across nodes.
type summarySeries struct {
	labels []Label
	hist   hdrhist.Histogram
	sum    float64
	count  int64
}

// scalarSeries accumulates one label-set's counter or gauge across nodes.
type scalarSeries struct {
	labels []Label
	sum    float64
	min    float64
	max    float64
	n      int
}

// Federate merges per-node expositions into the fleet view: every input
// family re-exposed under its own name with a node label prepended to each
// sample, plus one dms_fleet_* aggregate family per source family —
// counters sum, gauges report min/max/mean (a stat label), and summaries
// merge through an hdrhist reconstruction: each node's reported quantiles
// are replayed into a shared histogram weighted by that node's sample
// count, so merged fleet quantiles are order-independent across nodes
// (bucket increments commute) and _sum/_count add exactly. Family
// metadata (help, type) comes from the first node exposing the family; a
// same-named family with a conflicting type on a later node is skipped.
// Output families are sorted by name and the result always passes
// ValidateExposition.
func Federate(nodes []NodeExposition) []Family {
	type agg struct {
		typ       string
		help      string
		perNode   []SampleLine
		scalars   map[string]*scalarSeries // labelKey → series
		summaries map[string]*summarySeries
		order     []string // first-seen labelKey order
	}
	aggs := make(map[string]*agg)
	var names []string

	for _, ne := range nodes {
		for _, f := range ne.Families {
			a, ok := aggs[f.Name]
			if !ok {
				a = &agg{
					typ: f.Type, help: f.Help,
					scalars:   make(map[string]*scalarSeries),
					summaries: make(map[string]*summarySeries),
				}
				aggs[f.Name] = a
				names = append(names, f.Name)
			}
			if f.Type != a.typ {
				continue // type conflict across nodes: first declaration wins
			}
			// Per-node view: node label first, original labels after.
			for _, s := range f.Samples {
				labeled := SampleLine{
					Suffix: s.Suffix,
					Labels: append([]Label{{Key: NodeLabel, Value: ne.Node}}, s.Labels...),
					Value:  s.Value,
				}
				a.perNode = append(a.perNode, labeled)
			}
			// Aggregate view.
			switch f.Type {
			case "counter", "gauge":
				for _, s := range f.Samples {
					key := labelKey(s.Labels)
					sc, ok := a.scalars[key]
					if !ok {
						sc = &scalarSeries{labels: s.Labels}
						a.scalars[key] = sc
						a.order = append(a.order, key)
					}
					if sc.n == 0 || s.Value < sc.min {
						sc.min = s.Value
					}
					if sc.n == 0 || s.Value > sc.max {
						sc.max = s.Value
					}
					sc.sum += s.Value
					sc.n++
				}
			case "summary":
				mergeSummaryNode(a.summaries, &a.order, f.Samples)
			}
		}
	}

	sort.Strings(names)
	out := make([]Family, 0, 2*len(names))
	for _, name := range names {
		a := aggs[name]
		out = append(out, Family{Name: name, Help: a.help + " (per node)", Type: a.typ, Samples: a.perNode})
		fleet := Family{Name: fleetName(name), Type: a.typ}
		switch a.typ {
		case "counter":
			fleet.Help = a.help + " (fleet sum)"
			for _, key := range a.order {
				sc := a.scalars[key]
				fleet.Samples = append(fleet.Samples, SampleLine{Labels: sc.labels, Value: sc.sum})
			}
		case "gauge":
			fleet.Help = a.help + " (fleet min/max/mean)"
			for _, key := range a.order {
				sc := a.scalars[key]
				for _, st := range []struct {
					stat string
					v    float64
				}{{"min", sc.min}, {"max", sc.max}, {"mean", sc.sum / float64(sc.n)}} {
					fleet.Samples = append(fleet.Samples, SampleLine{
						Labels: append(append([]Label(nil), sc.labels...), Label{Key: "stat", Value: st.stat}),
						Value:  st.v,
					})
				}
			}
		case "summary":
			fleet.Help = a.help + " (fleet merge)"
			for _, key := range a.order {
				ss := a.summaries[key]
				snap := ss.hist.Snapshot()
				for _, q := range quantiles {
					fleet.Samples = append(fleet.Samples, SampleLine{
						Labels: append(append([]Label(nil), ss.labels...),
							Label{Key: "quantile", Value: strconv.FormatFloat(q, 'g', -1, 64)}),
						Value: snap.Quantile(q).Seconds(),
					})
				}
				fleet.Samples = append(fleet.Samples,
					SampleLine{Suffix: "_sum", Labels: ss.labels, Value: ss.sum},
					SampleLine{Suffix: "_count", Labels: ss.labels, Value: float64(ss.count)})
			}
		}
		if len(fleet.Samples) > 0 {
			out = append(out, fleet)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// mergeSummaryNode folds one node's summary samples into the per-label-set
// accumulators. Quantile values stand in for a share of the node's count:
// q50 covers the lower half, each further quantile the slice up to it, and
// the top quantile the remaining tail — the coarse-grained inverse of a
// quantile readout, accurate to the source histogram's own resolution.
func mergeSummaryNode(acc map[string]*summarySeries, order *[]string, samples []SampleLine) {
	type nodeSeries struct {
		labels []Label
		qs     map[float64]float64
		sum    float64
		count  int64
	}
	series := make(map[string]*nodeSeries)
	var seen []string
	for _, s := range samples {
		base := s.without("quantile")
		key := labelKey(base)
		ns, ok := series[key]
		if !ok {
			ns = &nodeSeries{labels: base, qs: make(map[float64]float64)}
			series[key] = ns
			seen = append(seen, key)
		}
		switch s.Suffix {
		case "_sum":
			ns.sum = s.Value
		case "_count":
			ns.count = int64(s.Value)
		default:
			if q, err := strconv.ParseFloat(s.Get("quantile"), 64); err == nil {
				ns.qs[q] = s.Value
			}
		}
	}
	for _, key := range seen {
		ns := series[key]
		ss, ok := acc[key]
		if !ok {
			ss = &summarySeries{labels: ns.labels}
			acc[key] = ss
			*order = append(*order, key)
		}
		ss.sum += ns.sum
		ss.count += ns.count
		if ns.count == 0 || len(ns.qs) == 0 {
			continue
		}
		qs := make([]float64, 0, len(ns.qs))
		for q := range ns.qs {
			qs = append(qs, q)
		}
		sort.Float64s(qs)
		prev := 0.0
		remaining := ns.count
		for i, q := range qs {
			share := q - prev
			if i == len(qs)-1 {
				share = 1 - prev // the top quantile absorbs the tail
			}
			n := int64(share * float64(ns.count))
			if n > remaining {
				n = remaining
			}
			if i == len(qs)-1 {
				n = remaining // rounding leftovers land on the tail value
			}
			ss.hist.RecordN(time.Duration(ns.qs[q]*float64(time.Second)), n)
			remaining -= n
			prev = q
		}
	}
}
