package obs

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// buildTestRegistry populates a registry with one family of every series
// shape: plain counter, counter func, gauge func, settable gauge, labeled
// counter vec, labeled gauge vec, plain summary, labeled summary vec.
func buildTestRegistry() *Registry {
	reg := NewRegistry()
	c := reg.Counter("dms_requests_total", "Requests served.")
	c.Add(42)
	reg.CounterFunc("dms_wal_appends_total", "WAL appends.", func() int64 { return 7 })
	reg.GaugeFunc("dms_goroutines", "Goroutines now.", func() float64 { return 12.5 })
	g := reg.Gauge("dms_in_flight", "Requests in flight.")
	g.Set(3)
	cv := reg.CounterVec("dms_errors_total", "Errors by endpoint.", "endpoint")
	cv.With("data.nearest").Add(2)
	cv.With("models.recommend").Add(5)
	gv := reg.GaugeVec("dms_shard_epoch", "Ring epoch by shard.", "shard")
	gv.With("n1").Set(4)
	h := reg.Histogram("dms_request_seconds", "Request latency.")
	h.Record(3 * time.Millisecond)
	h.Record(9 * time.Millisecond)
	hv := reg.HistogramVec("dms_op_seconds", "Latency by op.", "op")
	hv.With("nearest").Record(2 * time.Millisecond)
	return reg
}

func render(t *testing.T, reg *Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.Bytes()
}

// TestParseExpositionLossless pins the inverse contract with the
// renderer: ParseExposition(render(reg)) captures every family and
// sample, and RenderExposition reproduces the registry bytes exactly.
func TestParseExpositionLossless(t *testing.T) {
	src := render(t, buildTestRegistry())
	fams, err := ParseExposition(src)
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}

	byName := make(map[string]Family)
	for _, f := range fams {
		byName[f.Name] = f
	}
	checks := []struct {
		name, typ string
		samples   int
	}{
		{"dms_requests_total", "counter", 1},
		{"dms_wal_appends_total", "counter", 1},
		{"dms_goroutines", "gauge", 1},
		{"dms_in_flight", "gauge", 1},
		{"dms_errors_total", "counter", 2},
		{"dms_shard_epoch", "gauge", 1},
		{"dms_request_seconds", "summary", len(quantiles) + 2},
		{"dms_op_seconds", "summary", len(quantiles) + 2},
	}
	if len(fams) != len(checks) {
		t.Fatalf("parsed %d families, want %d", len(fams), len(checks))
	}
	for _, c := range checks {
		f, ok := byName[c.name]
		if !ok {
			t.Fatalf("family %q missing", c.name)
		}
		if f.Type != c.typ || len(f.Samples) != c.samples {
			t.Errorf("%s: got type=%s samples=%d, want %s/%d", c.name, f.Type, len(f.Samples), c.typ, c.samples)
		}
		if f.Help == "" {
			t.Errorf("%s: help lost", c.name)
		}
	}

	// Spot-check values and labels survive.
	if v := byName["dms_requests_total"].Samples[0].Value; v != 42 {
		t.Errorf("counter value = %v, want 42", v)
	}
	errs := byName["dms_errors_total"]
	if got := errs.Samples[0].Get("endpoint"); got != "data.nearest" {
		t.Errorf("vec label = %q, want data.nearest", got)
	}
	sum := byName["dms_request_seconds"]
	var sawSum, sawCount, sawQ bool
	for _, s := range sum.Samples {
		switch s.Suffix {
		case "_sum":
			sawSum = s.Value > 0
		case "_count":
			sawCount = s.Value == 2
		default:
			sawQ = sawQ || s.Get("quantile") == "0.99"
		}
	}
	if !sawSum || !sawCount || !sawQ {
		t.Errorf("summary lines lost: sum=%v count=%v q99=%v", sawSum, sawCount, sawQ)
	}

	// Byte-level inverse on registry output.
	if got := RenderExposition(fams); !bytes.Equal(got, src) {
		t.Errorf("render(parse(x)) != x:\n--- got ---\n%s\n--- want ---\n%s", got, src)
	}
}

// TestParseExpositionEscapes pins label and help escaping through the
// full escape pipeline (escapeLabel + %q on labels, escapeHelp on help).
func TestParseExpositionEscapes(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("dms_weird_total", `Help with \backslash and
newline.`, "path")
	cv.With(`a"b\c
d`).Add(1)
	src := render(t, reg)
	if _, err := ValidateExposition(src); err != nil {
		t.Fatalf("ValidateExposition rejects renderer output: %v", err)
	}
	fams, err := ParseExposition(src)
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if len(fams) != 1 {
		t.Fatalf("got %d families", len(fams))
	}
	if want := "Help with \\backslash and\nnewline."; fams[0].Help != want {
		t.Errorf("help = %q, want %q", fams[0].Help, want)
	}
	if want := "a\"b\\c\nd"; fams[0].Samples[0].Get("path") != want {
		t.Errorf("label = %q, want %q", fams[0].Samples[0].Get("path"), want)
	}
	if got := RenderExposition(fams); !bytes.Equal(got, src) {
		t.Errorf("escape round trip not byte-identical:\n got %q\nwant %q", got, src)
	}
}

func TestParseExpositionRejects(t *testing.T) {
	cases := []struct{ name, input string }{
		{"no type", "dms_x_total 1\n"},
		{"bad value", "# TYPE dms_x_total counter\ndms_x_total nope\n"},
		{"unknown type", "# TYPE dms_x histogram\ndms_x 1\n"},
		{"unterminated labels", "# TYPE dms_x gauge\ndms_x{a=\"b 1\n"},
		{"double declaration", "# TYPE dms_x gauge\n# TYPE dms_x gauge\ndms_x 1\n"},
		{"bad name", "# TYPE BadName counter\nBadName 1\n"},
	}
	for _, c := range cases {
		if _, err := ParseExposition([]byte(c.input)); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.input)
		}
	}
}

// shardExposition builds one shard's parsed metrics with the given
// request count, error count, and latency samples.
func shardExposition(t *testing.T, node string, reqs, errs int64, lat []time.Duration) NodeExposition {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("dms_requests_total", "Requests served.").Add(reqs)
	reg.Counter("dms_errors_total", "Errors.").Add(errs)
	reg.GaugeFunc("dms_in_flight", "In flight.", func() float64 { return float64(reqs) / 10 })
	h := reg.Histogram("dms_request_seconds", "Latency.")
	for _, d := range lat {
		h.Record(d)
	}
	fams, err := ParseExposition(render(t, reg))
	if err != nil {
		t.Fatalf("parse shard %s: %v", node, err)
	}
	return NodeExposition{Node: node, Families: fams}
}

func findFamily(t *testing.T, fams []Family, name string) Family {
	t.Helper()
	for _, f := range fams {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("family %q not in federated output", name)
	return Family{}
}

func TestFederateMerge(t *testing.T) {
	nodes := []NodeExposition{
		shardExposition(t, "127.0.0.1:7001", 100, 3, []time.Duration{time.Millisecond, 2 * time.Millisecond}),
		shardExposition(t, "127.0.0.1:7002", 50, 1, []time.Duration{8 * time.Millisecond}),
		shardExposition(t, "127.0.0.1:7003", 10, 0, nil),
	}
	fams := Federate(nodes)

	out := RenderExposition(fams)
	if _, err := ValidateExposition(out); err != nil {
		t.Fatalf("federated output fails ValidateExposition: %v\n%s", err, out)
	}

	// Per-node series carry the node label.
	perNode := findFamily(t, fams, "dms_requests_total")
	if len(perNode.Samples) != 3 {
		t.Fatalf("per-node samples = %d, want 3", len(perNode.Samples))
	}
	seen := make(map[string]float64)
	for _, s := range perNode.Samples {
		seen[s.Get(NodeLabel)] = s.Value
	}
	if seen["127.0.0.1:7002"] != 50 {
		t.Errorf("node series lost: %v", seen)
	}

	// Counters sum.
	fleetReq := findFamily(t, fams, "dms_fleet_requests_total")
	if fleetReq.Type != "counter" || len(fleetReq.Samples) != 1 || fleetReq.Samples[0].Value != 160 {
		t.Errorf("fleet counter = %+v, want single sample 160", fleetReq)
	}

	// Gauges expose min/max/mean via the stat label.
	fleetGauge := findFamily(t, fams, "dms_fleet_in_flight")
	stats := make(map[string]float64)
	for _, s := range fleetGauge.Samples {
		stats[s.Get("stat")] = s.Value
	}
	if stats["min"] != 1 || stats["max"] != 10 || stats["mean"] != 16.0/3 {
		t.Errorf("fleet gauge stats = %v", stats)
	}

	// Summaries merge: _count and _sum add exactly.
	fleetSum := findFamily(t, fams, "dms_fleet_request_seconds")
	var count, sum float64
	for _, s := range fleetSum.Samples {
		switch s.Suffix {
		case "_count":
			count = s.Value
		case "_sum":
			sum = s.Value
		}
	}
	if count != 3 {
		t.Errorf("fleet summary count = %v, want 3", count)
	}
	if sum < 0.010 || sum > 0.012 { // 1+2+8 ms
		t.Errorf("fleet summary sum = %v, want ~0.011", sum)
	}
}

// TestFederateOrderIndependent pins the hdrhist-merge property the design
// leans on: fleet quantiles must not depend on scrape order.
func TestFederateOrderIndependent(t *testing.T) {
	mk := func() []NodeExposition {
		return []NodeExposition{
			shardExposition(t, "a", 1000, 0, []time.Duration{time.Millisecond, 5 * time.Millisecond, 40 * time.Millisecond}),
			shardExposition(t, "b", 500, 2, []time.Duration{2 * time.Millisecond}),
			shardExposition(t, "c", 20, 9, []time.Duration{90 * time.Millisecond, 3 * time.Millisecond}),
		}
	}
	base := mk()
	want := summaryValues(t, Federate(base))
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		shuffled := mk()
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := summaryValues(t, Federate(shuffled))
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("trial %d: fleet %s = %v, want %v (order-dependent merge)", trial, k, got[k], v)
			}
		}
	}
}

// summaryValues extracts every fleet-summary sample keyed by
// suffix/quantile for comparison across input orders.
func summaryValues(t *testing.T, fams []Family) map[string]float64 {
	t.Helper()
	f := findFamily(t, fams, "dms_fleet_request_seconds")
	out := make(map[string]float64)
	for _, s := range f.Samples {
		key := s.Suffix
		if key == "" {
			key = "q" + s.Get("quantile")
		}
		out[key] = s.Value
	}
	return out
}

// TestFederateDropsAbsentNodes pins the age-out contract: federation only
// reflects the expositions passed in, so a shard that stops being scraped
// (ejected, dead) contributes nothing.
func TestFederateDropsAbsentNodes(t *testing.T) {
	live := shardExposition(t, "live", 10, 0, nil)
	dead := shardExposition(t, "dead", 99, 0, nil)
	withDead := Federate([]NodeExposition{live, dead})
	if n := len(findFamily(t, withDead, "dms_requests_total").Samples); n != 2 {
		t.Fatalf("want 2 node series before ejection, got %d", n)
	}
	after := Federate([]NodeExposition{live})
	for _, s := range findFamily(t, after, "dms_requests_total").Samples {
		if s.Get(NodeLabel) == "dead" {
			t.Fatal("dead node's series survived ejection")
		}
	}
	if v := findFamily(t, after, "dms_fleet_requests_total").Samples[0].Value; v != 10 {
		t.Errorf("fleet sum still includes dead node: %v", v)
	}
}

func TestFleetName(t *testing.T) {
	if got := fleetName("dms_requests_total"); got != "dms_fleet_requests_total" {
		t.Errorf("fleetName dms_ = %q", got)
	}
	if got := fleetName("go_goroutines"); got != "dms_fleet_go_goroutines" {
		t.Errorf("fleetName other = %q", got)
	}
}

func TestFederateEmpty(t *testing.T) {
	if fams := Federate(nil); len(fams) != 0 {
		t.Errorf("Federate(nil) = %d families", len(fams))
	}
	if out := RenderExposition(nil); len(out) != 0 {
		t.Errorf("RenderExposition(nil) = %q", out)
	}
	if strings.TrimSpace(string(RenderExposition([]Family{}))) != "" {
		t.Error("empty render not empty")
	}
}
