package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Logger is a minimal leveled key=value logger. Lines look like
//
//	time=2026-08-08T12:00:00Z level=warn msg="shard ejected" node=n2 epoch=4
//
// so health-probe ejections and fail-open reroutes are grep-able events.
// A nil *Logger is a valid no-op receiver; With derives child loggers that
// stamp fixed fields (node identity, epoch) on every line.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	min   Level
	now   func() time.Time // injectable for tests
	extra string           // pre-rendered fields from With
}

// Level orders log severities.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "info"
}

// ParseLevel parses a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (want debug/info/warn/error)", s)
}

// NewLogger writes lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, min: min, now: time.Now}
}

// With returns a child logger that appends the given key/value pairs to
// every line. Fields render in the order given, after the parent's.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	var b strings.Builder
	b.WriteString(l.extra)
	appendFields(&b, kv)
	child.extra = b.String()
	return &child
}

// Enabled reports whether lines at level would be written.
func (l *Logger) Enabled(level Level) bool { return l != nil && level >= l.min }

func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }
func (l *Logger) Info(msg string, kv ...any)  { l.log(LevelInfo, msg, kv) }
func (l *Logger) Warn(msg string, kv ...any)  { l.log(LevelWarn, msg, kv) }
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString("time=")
	b.WriteString(l.now().UTC().Format(time.RFC3339))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	b.WriteString(l.extra)
	appendFields(&b, kv)
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String())
}

// appendFields renders key/value pairs as ` k=v`; a trailing odd value
// gets the key "extra" rather than being dropped.
func appendFields(b *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		var val any = "(missing)"
		if i+1 < len(kv) {
			val = kv[i+1]
		} else {
			key, val = "extra", key
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(quoteValue(formatValue(val)))
	}
}

func formatValue(v any) string {
	switch t := v.(type) {
	case string:
		return t
	case error:
		return t.Error()
	case time.Duration:
		return t.String()
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	default:
		return fmt.Sprint(v)
	}
}

// quoteValue quotes a value only when it needs it, keeping typical lines
// (identifiers, numbers) unquoted and grep-friendly.
func quoteValue(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \"=\n\t") {
		return strconv.Quote(s)
	}
	return s
}
