package obs

import (
	"errors"
	"sort"
	"sync"
	"time"
)

// ErrDisabled is returned by read surfaces of switched-off subsystems —
// SlowLog.Snapshot with a non-positive threshold, TraceLog.Query with a
// zero-size ring. API handlers map it to 404 Not Found (see the
// errboundary sentinel table): the route exists, the feature is off.
var ErrDisabled = errors.New("obs: subsystem disabled")

// SlowEntry is one retained slow request: what it was, how long it took,
// and its full span tree.
type SlowEntry struct {
	Endpoint string    `json:"endpoint"`
	DurMS    float64   `json:"dur_ms"`
	At       time.Time `json:"at"`
	Trace    TraceDump `json:"trace"`
}

// SlowLog is an always-on, fixed-memory ring of the most recent requests
// that crossed a latency threshold, each with its span tree. The fast
// path — a request under the threshold — is one comparison and no lock,
// so it is safe to leave enabled in production; that is the point: when a
// p99.9 spike happens at 3am, the evidence is already in memory.
type SlowLog struct {
	threshold time.Duration
	mu        sync.Mutex
	ring      []SlowEntry
	next      int
	total     int64
}

// NewSlowLog returns a ring of size entries retaining requests slower
// than threshold. A non-positive threshold disables the log (Observe
// no-ops, Snapshot returns ErrDisabled); size is clamped to at least 1
// when enabled.
func NewSlowLog(size int, threshold time.Duration) *SlowLog {
	if size < 1 {
		size = 1
	}
	return &SlowLog{threshold: threshold, ring: make([]SlowEntry, 0, size)}
}

// Enabled reports whether the log retains anything. Nil-safe.
func (l *SlowLog) Enabled() bool { return l != nil && l.threshold > 0 }

// Threshold returns the configured latency threshold. Nil-safe.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Observe records one finished request. The span dump is materialized
// lazily — only when the request actually crossed the threshold — so the
// common fast request costs a single comparison. Returns whether the
// entry was retained. Nil-safe.
func (l *SlowLog) Observe(endpoint string, d time.Duration, at time.Time, dump func() TraceDump) bool {
	if !l.Enabled() || d < l.threshold {
		return false
	}
	e := SlowEntry{Endpoint: endpoint, DurMS: float64(d) / float64(time.Millisecond), At: at}
	if dump != nil {
		e.Trace = dump()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
		l.next = (l.next + 1) % cap(l.ring)
	}
	return true
}

// Total returns how many requests have crossed the threshold since start
// (retained or already evicted from the ring). Nil-safe.
func (l *SlowLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained entries, slowest first. When the log is
// disabled it returns ErrDisabled.
func (l *SlowLog) Snapshot() ([]SlowEntry, error) {
	if !l.Enabled() {
		return nil, ErrDisabled
	}
	l.mu.Lock()
	out := make([]SlowEntry, len(l.ring))
	copy(out, l.ring)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DurMS > out[j].DurMS })
	return out, nil
}
