package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func testLogger(min Level) (*Logger, *bytes.Buffer) {
	var buf bytes.Buffer
	l := NewLogger(&buf, min)
	l.now = func() time.Time { return time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC) } // fixed for deterministic lines
	return l, &buf
}

func TestLoggerFormat(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	l.Info("shard ejected", "node", "127.0.0.1:7002", "epoch", 4, "err", errors.New("probe timeout"))
	got := strings.TrimSuffix(buf.String(), "\n")
	want := `time=2026-08-08T10:00:00Z level=info msg="shard ejected" node=127.0.0.1:7002 epoch=4 err="probe timeout"`
	if got != want {
		t.Errorf("line:\n got %s\nwant %s", got, want)
	}
}

func TestLoggerLevels(t *testing.T) {
	l, buf := testLogger(LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "level=warn") || !strings.Contains(lines[1], "level=error") {
		t.Errorf("filtered lines = %q", lines)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled disagrees with filtering")
	}
}

func TestLoggerWith(t *testing.T) {
	l, buf := testLogger(LevelDebug)
	child := l.With("node", "n1").With("epoch", 7)
	child.Debug("probe ok", "rtt", 3*time.Millisecond)
	got := buf.String()
	for _, want := range []string{"node=n1", "epoch=7", "rtt=3ms", "level=debug"} {
		if !strings.Contains(got, want) {
			t.Errorf("line %q missing %q", got, want)
		}
	}
	// Parent is untouched by With.
	buf.Reset()
	l.Info("plain")
	if strings.Contains(buf.String(), "node=") {
		t.Errorf("parent gained child fields: %q", buf.String())
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("into the void", "k", "v")
	l.With("a", 1).Error("still nothing")
	if l.Enabled(LevelError) {
		t.Error("nil logger claims enabled")
	}
}

func TestLoggerOddFields(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	l.Info("odd", "dangling")
	if !strings.Contains(buf.String(), "extra=dangling") {
		t.Errorf("dangling value dropped: %q", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{"debug": LevelDebug, "INFO": LevelInfo, "warn": LevelWarn, "warning": LevelWarn, "error": LevelError, "": LevelInfo} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("accepted unknown level")
	}
}
