package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SLO support: per-endpoint latency and error-rate objectives evaluated
// over rolling windows, reported as multi-window burn rates (the
// fast-burn/slow-burn alerting pattern). An objective like "p99<5ms"
// grants an error budget of 1% of requests slower than 5ms; the burn rate
// is the observed bad fraction divided by that budget, so burn 1.0 means
// exactly on budget, burn 10 means the budget drains 10x too fast.

// Burn-rate windows: the fast window catches sharp spikes (page-worthy),
// the slow window catches sustained slow leaks.
const (
	sloFastWindow = 1 * time.Minute
	sloSlowWindow = 10 * time.Minute
)

// SLO is one parsed objective for one endpoint.
type SLO struct {
	Endpoint string  // bare endpoint name, e.g. "nearest"; matches "data.nearest"
	Name     string  // objective name: "p50"/"p95"/"p99"/"p999" or "err"
	Quantile float64 // latency objectives: quantile in (0,1)
	// Latency is the latency bound for quantile objectives.
	Latency time.Duration
	// ErrRate is the error budget fraction for "err" objectives (0.001 = 0.1%).
	ErrRate float64
}

// Budget returns the allowed bad-request fraction: 1-q for latency
// objectives (p99<5ms allows 1% of requests over 5ms), ErrRate for error
// objectives.
func (s SLO) Budget() float64 {
	if s.Name == "err" {
		return s.ErrRate
	}
	return 1 - s.Quantile
}

// ID is the objective's stable identity used as a metric label value,
// e.g. "nearest_p99".
func (s SLO) ID() string { return s.Endpoint + "_" + s.Name }

// String renders the objective back in flag grammar.
func (s SLO) String() string {
	if s.Name == "err" {
		return fmt.Sprintf("%s:err<%s%%", s.Endpoint, formatFloat(s.ErrRate*100))
	}
	return fmt.Sprintf("%s:%s<%s", s.Endpoint, s.Name, s.Latency)
}

var sloQuantiles = map[string]float64{"p50": 0.5, "p95": 0.95, "p99": 0.99, "p999": 0.999}

// ParseSLOs parses the -slo flag grammar: semicolon-separated endpoint
// clauses, each "endpoint:obj,obj" where an objective is either
// "pNN<duration" (Go duration syntax: 5ms, 1.5s) or "err<rate%". Example:
//
//	nearest:p99<5ms,err<0.1%;recommend:p95<20ms
func ParseSLOs(spec string) ([]SLO, error) {
	var out []SLO
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		endpoint, objs, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("slo clause %q: want endpoint:objectives", clause)
		}
		endpoint = strings.TrimSpace(endpoint)
		if endpoint == "" {
			return nil, fmt.Errorf("slo clause %q: empty endpoint", clause)
		}
		for _, obj := range strings.Split(objs, ",") {
			obj = strings.TrimSpace(obj)
			name, bound, ok := strings.Cut(obj, "<")
			if !ok {
				return nil, fmt.Errorf("slo objective %q: want name<bound", obj)
			}
			name = strings.TrimSpace(name)
			bound = strings.TrimSpace(bound)
			slo := SLO{Endpoint: endpoint, Name: name}
			switch {
			case name == "err":
				pct, ok := strings.CutSuffix(bound, "%")
				if !ok {
					return nil, fmt.Errorf("slo objective %q: error bound must end in %%", obj)
				}
				rate, err := strconv.ParseFloat(pct, 64)
				if err != nil || rate <= 0 || rate >= 100 {
					return nil, fmt.Errorf("slo objective %q: bad error rate", obj)
				}
				slo.ErrRate = rate / 100
			case sloQuantiles[name] != 0:
				d, err := time.ParseDuration(bound)
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("slo objective %q: bad latency bound", obj)
				}
				slo.Quantile = sloQuantiles[name]
				slo.Latency = d
			default:
				return nil, fmt.Errorf("slo objective %q: unknown objective %q (want p50/p95/p99/p999/err)", obj, name)
			}
			out = append(out, slo)
		}
	}
	return out, nil
}

// MatchesEndpoint reports whether the objective applies to the metric
// endpoint name: exact, or dotted-suffix ("nearest" covers "data.nearest").
func (s SLO) MatchesEndpoint(name string) bool {
	return name == s.Endpoint || strings.HasSuffix(name, "."+s.Endpoint)
}

// SLOStatus is one objective's current evaluation, surfaced on /statsz.
type SLOStatus struct {
	Objective string  `json:"objective"` // e.g. "nearest:p99<5ms"
	ID        string  `json:"id"`        // e.g. "nearest_p99"
	Budget    float64 `json:"budget"`    // allowed bad fraction
	FastBurn  float64 `json:"fast_burn"` // burn over the fast window
	SlowBurn  float64 `json:"slow_burn"` // burn over the slow window
	FastTotal int64   `json:"fast_total"`
	SlowTotal int64   `json:"slow_total"`
	Breaching bool    `json:"breaching"` // fast burn > 1
}

// sloBucket is one second of per-objective observations.
type sloBucket struct {
	sec   int64 // unix second this bucket covers
	total int64
	bad   int64
}

// sloSeries is the rolling per-objective window: a ring of one-second
// buckets sized to the slow window.
type sloSeries struct {
	slo     SLO
	buckets []sloBucket
}

func (s *sloSeries) observe(sec int64, bad bool) {
	b := &s.buckets[sec%int64(len(s.buckets))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	b.total++
	if bad {
		b.bad++
	}
}

// window sums buckets within [sec-win+1, sec].
func (s *sloSeries) window(sec int64, win time.Duration) (total, bad int64) {
	lo := sec - int64(win/time.Second) + 1
	for i := range s.buckets {
		b := s.buckets[i]
		if b.sec >= lo && b.sec <= sec && b.total > 0 {
			total += b.total
			bad += b.bad
		}
	}
	return total, bad
}

// SLOEvaluator scores requests against a set of objectives and exposes
// burn-rate gauges. Safe for concurrent use.
type SLOEvaluator struct {
	mu     sync.Mutex
	series []*sloSeries
	now    func() time.Time // injectable clock for tests

	target   *GaugeVec
	fastBurn *GaugeVec
	slowBurn *GaugeVec
	breaches *CounterVec
}

// NewSLOEvaluator builds an evaluator for the given objectives. Returns
// nil (a safe no-op receiver) when slos is empty.
func NewSLOEvaluator(slos []SLO) *SLOEvaluator {
	if len(slos) == 0 {
		return nil
	}
	e := &SLOEvaluator{now: time.Now}
	n := int(sloSlowWindow / time.Second)
	for _, s := range slos {
		e.series = append(e.series, &sloSeries{slo: s, buckets: make([]sloBucket, n)})
	}
	return e
}

// Register exposes the evaluator's burn-rate families on reg. The objective
// label value is SLO.ID() ("nearest_p99").
func (e *SLOEvaluator) Register(reg *Registry) {
	if e == nil {
		return
	}
	e.target = reg.GaugeVec("dms_slo_budget", "Allowed bad-request fraction per objective.", "objective")
	e.fastBurn = reg.GaugeVec("dms_slo_fast_burn", "Error-budget burn rate over the fast (1m) window.", "objective")
	e.slowBurn = reg.GaugeVec("dms_slo_slow_burn", "Error-budget burn rate over the slow (10m) window.", "objective")
	e.breaches = reg.CounterVec("dms_slo_breaches_total", "Evaluations that observed a fast-window burn rate above 1.", "objective")
	for _, s := range e.series {
		e.target.With(s.slo.ID()).Set(s.slo.Budget())
	}
}

// Observe scores one finished request against every objective matching
// endpoint. A request is bad for a latency objective when it ran longer
// than the bound; for an error objective when failed is true.
func (e *SLOEvaluator) Observe(endpoint string, dur time.Duration, failed bool) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	sec := e.now().Unix()
	for _, s := range e.series {
		if !s.slo.MatchesEndpoint(endpoint) {
			continue
		}
		bad := failed
		if s.slo.Name != "err" {
			bad = dur > s.slo.Latency
		}
		s.observe(sec, bad)
	}
}

// burn converts a window's bad fraction into a burn-rate multiple of the
// budget. An empty window burns nothing.
func burn(total, bad int64, budget float64) float64 {
	if total == 0 || budget <= 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / budget
}

// Status evaluates every objective now and, when Register was called,
// refreshes the burn gauges. Call it from /statsz and /metricsz handlers
// so scraped gauges are current.
func (e *SLOEvaluator) Status() []SLOStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	sec := e.now().Unix()
	out := make([]SLOStatus, 0, len(e.series))
	for _, s := range e.series {
		budget := s.slo.Budget()
		ft, fb := s.window(sec, sloFastWindow)
		st, sb := s.window(sec, sloSlowWindow)
		status := SLOStatus{
			Objective: s.slo.String(),
			ID:        s.slo.ID(),
			Budget:    budget,
			FastBurn:  burn(ft, fb, budget),
			SlowBurn:  burn(st, sb, budget),
			FastTotal: ft,
			SlowTotal: st,
		}
		status.Breaching = status.FastBurn > 1
		if e.fastBurn != nil {
			e.fastBurn.With(status.ID).Set(status.FastBurn)
			e.slowBurn.With(status.ID).Set(status.SlowBurn)
			if status.Breaching {
				e.breaches.With(status.ID).Add(1)
			}
		}
		out = append(out, status)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
