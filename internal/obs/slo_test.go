package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// near tolerates the float error the 1-q budget arithmetic introduces.
func near(got, want float64) bool { return got > want*0.999 && got < want*1.001 }

func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs("nearest:p99<5ms,err<0.1%;recommend:p95<20ms")
	if err != nil {
		t.Fatalf("ParseSLOs: %v", err)
	}
	if len(slos) != 3 {
		t.Fatalf("got %d objectives, want 3", len(slos))
	}
	p99 := slos[0]
	if p99.Endpoint != "nearest" || p99.Name != "p99" || p99.Quantile != 0.99 || p99.Latency != 5*time.Millisecond {
		t.Errorf("p99 objective = %+v", p99)
	}
	if got := p99.Budget(); got < 0.0099 || got > 0.0101 {
		t.Errorf("p99 budget = %v, want 0.01", got)
	}
	errObj := slos[1]
	if errObj.Name != "err" || errObj.ErrRate != 0.001 || errObj.Budget() != 0.001 {
		t.Errorf("err objective = %+v", errObj)
	}
	if errObj.ID() != "nearest_err" {
		t.Errorf("ID = %q", errObj.ID())
	}
	if s := errObj.String(); s != "nearest:err<0.1%" {
		t.Errorf("String = %q", s)
	}
	if slos[2].Endpoint != "recommend" || slos[2].Quantile != 0.95 {
		t.Errorf("second clause = %+v", slos[2])
	}
}

func TestParseSLOsRejects(t *testing.T) {
	for _, bad := range []string{
		"nearest",             // no objectives
		"nearest:p99",         // no bound
		"nearest:p42<5ms",     // unknown quantile
		"nearest:p99<banana",  // bad duration
		"nearest:err<0.1",     // missing %
		"nearest:err<200%",    // impossible rate
		":p99<5ms",            // empty endpoint
		"nearest:latency<5ms", // unknown objective
	} {
		if _, err := ParseSLOs(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	if slos, err := ParseSLOs(" ; "); err != nil || len(slos) != 0 {
		t.Errorf("blank spec: %v, %v", slos, err)
	}
}

func TestSLOMatchesEndpoint(t *testing.T) {
	s := SLO{Endpoint: "nearest"}
	if !s.MatchesEndpoint("nearest") || !s.MatchesEndpoint("data.nearest") {
		t.Error("suffix match failed")
	}
	if s.MatchesEndpoint("data.nearest_extra") || s.MatchesEndpoint("models.recommend") {
		t.Error("matched unrelated endpoint")
	}
}

// TestSLOBurnRates drives the evaluator with a fake clock and pins the
// burn math: burn = bad-fraction / budget over each window.
func TestSLOBurnRates(t *testing.T) {
	slos, err := ParseSLOs("nearest:p99<5ms,err<1%")
	if err != nil {
		t.Fatal(err)
	}
	e := NewSLOEvaluator(slos)
	clock := time.Unix(1_000_000, 0)
	e.now = func() time.Time { return clock }
	reg := NewRegistry()
	e.Register(reg)

	// 100 requests: 10 over the 5ms bound, 2 errors.
	for i := 0; i < 100; i++ {
		dur := time.Millisecond
		if i < 10 {
			dur = 20 * time.Millisecond
		}
		e.Observe("data.nearest", dur, i < 2)
	}
	status := e.Status()
	if len(status) != 2 {
		t.Fatalf("got %d statuses, want 2", len(status))
	}
	var latency, errs SLOStatus
	for _, s := range status {
		if s.ID == "nearest_p99" {
			latency = s
		} else {
			errs = s
		}
	}
	// 10% bad against a 1% budget: burn 10 on both windows.
	if !near(latency.FastBurn, 10) || !near(latency.SlowBurn, 10) || !latency.Breaching {
		t.Errorf("latency status = %+v, want burn 10 breaching", latency)
	}
	// 2% errors against a 1% budget: burn 2.
	if !near(errs.FastBurn, 2) || !errs.Breaching {
		t.Errorf("err status = %+v, want burn 2", errs)
	}

	// Two minutes later the fast window is clean but the slow window still
	// sees the spike.
	clock = clock.Add(2 * time.Minute)
	for i := 0; i < 100; i++ {
		e.Observe("data.nearest", time.Millisecond, false)
	}
	status = e.Status()
	for _, s := range status {
		if s.ID == "nearest_p99" {
			if s.FastBurn != 0 || s.Breaching {
				t.Errorf("fast window did not recover: %+v", s)
			}
			if !near(s.SlowBurn, 5) { // 10 bad / 200 total / 0.01
				t.Errorf("slow burn = %v, want 5", s.SlowBurn)
			}
		}
	}

	// Eleven minutes later everything has aged out.
	clock = clock.Add(11 * time.Minute)
	for _, s := range e.Status() {
		if s.FastBurn != 0 || s.SlowBurn != 0 || s.FastTotal != 0 {
			t.Errorf("window did not age out: %+v", s)
		}
	}

	// The registered gauges expose the burn values.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dms_slo_fast_burn", "dms_slo_slow_burn", "dms_slo_budget", "dms_slo_breaches_total", `objective="nearest_p99"`} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if _, err := ValidateExposition(buf.Bytes()); err != nil {
		t.Errorf("slo exposition invalid: %v", err)
	}
}

// TestSLOEvaluatorNil pins that the disabled evaluator is a safe no-op.
func TestSLOEvaluatorNil(t *testing.T) {
	var e *SLOEvaluator
	e.Observe("x", time.Second, true)
	e.Register(NewRegistry())
	if s := e.Status(); s != nil {
		t.Errorf("nil evaluator Status = %v", s)
	}
	if NewSLOEvaluator(nil) != nil {
		t.Error("empty objective list should disable the evaluator")
	}
}
