// Package obs is the repo's stdlib-only observability kit: request-scoped
// tracing (Trace/Span trees with monotonic timings and context
// propagation), a central metrics Registry with Prometheus-text
// exposition, and a ring-buffer slow-request log. It exists so every tier
// of the serving stack — dmsapi client, dmsd handlers, fairds stages,
// the trainer, and the docstore TCP client — reports timing through one
// vocabulary instead of hand-kept counters per package.
//
// Span and metric names are lowercase_snake ASCII ([a-z][a-z0-9_]*); the
// fairvet obsnames analyzer enforces this at CI time and the Registry
// enforces it at registration time.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"strings"
	"sync"
	"time"
)

// Wire headers. TraceHeader rides on the request ("<id>" or "<id>;sample")
// and names the trace a server should join; SpanHeader rides back on the
// response as an HTTP trailer carrying the server's completed span tree as
// compact JSON (a trailer, because the tree is only complete after the
// body is written).
const (
	TraceHeader = "X-Dms-Trace"
	SpanHeader  = "X-Dms-Trace-Spans"
)

// maxSpans caps a single trace's span count so a runaway loop (one span
// per document in a huge batch, say) degrades to dropped spans rather than
// unbounded memory held by the slow-request log.
const maxSpans = 256

// Trace is one request's span tree. Spans are stored flat with parent
// indices; timings are offsets from the trace start on the monotonic
// clock. All methods are safe for concurrent use by the fan-out
// goroutines of a single request. The zero Trace is not usable — a nil
// *Trace, however, is: every method no-ops, so untraced requests pay
// nothing.
type Trace struct {
	id      string
	sampled bool
	start   time.Time

	mu      sync.Mutex
	spans   []spanData
	dropped int
	grafts  []graftData
}

// graftData is a remote tier's span tree waiting to be spliced into the
// local tree at Dump time.
type graftData struct {
	at     int
	remote TraceDump
}

type spanData struct {
	name   string
	parent int // index into spans; -1 = root
	start  time.Duration
	dur    time.Duration
	open   bool
}

// NewTrace starts a trace. An empty id is replaced by a fresh random one;
// a caller-supplied id (from the wire) is sanitized to at most 32 hex-ish
// characters. sampled marks whether the caller asked for the span tree
// back on the response.
func NewTrace(id string, sampled bool) *Trace {
	if id = sanitizeID(id); id == "" {
		id = newID()
	}
	return &Trace{id: id, sampled: sampled, start: time.Now()}
}

// ID returns the trace identifier. Nil-safe.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Sampled reports whether the span tree should be returned on the wire.
// Nil-safe.
func (t *Trace) Sampled() bool { return t != nil && t.sampled }

// startSpan opens a span under parent and returns its handle, or nil when
// the trace is nil or full.
func (t *Trace) startSpan(parent int, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		return nil
	}
	t.spans = append(t.spans, spanData{
		name:   name,
		parent: parent,
		start:  time.Since(t.start),
		open:   true,
	})
	return &Span{t: t, idx: len(t.spans) - 1}
}

// Span is a handle to one open span. A nil *Span is valid and inert, so
// call sites never need to guard on whether tracing is active.
type Span struct {
	t   *Trace
	idx int
}

// Index returns the span's position in its trace's Dump (a valid Graft
// target). Nil spans return -1.
func (s *Span) Index() int {
	if s == nil {
		return -1
	}
	return s.idx
}

// End closes the span, fixing its duration. Ending twice keeps the first
// duration. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	sp := &s.t.spans[s.idx]
	if sp.open {
		sp.dur = time.Since(s.t.start) - sp.start
		sp.open = false
	}
}

// ctxVal threads a trace plus the index of the current parent span.
type ctxVal struct {
	t    *Trace
	span int
}

type ctxKey struct{}

// NewContext returns ctx carrying t; spans started from it are roots.
// A nil t returns ctx unchanged.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: t, span: -1})
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	v, _ := ctx.Value(ctxKey{}).(ctxVal)
	return v.t
}

// StartSpan opens a span named name under the current span in ctx and
// returns a derived context (for child spans) plus the span handle. When
// ctx carries no trace — or the trace is full — both returns are inert:
// the original ctx and a nil span whose End is a no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok || v.t == nil {
		return ctx, nil
	}
	s := v.t.startSpan(v.span, name)
	if s == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: v.t, span: s.idx}), s
}

// TraceDump is the wire and report form of a span tree: a flat span list
// with parent indices and microsecond offsets from the trace start.
type TraceDump struct {
	ID      string     `json:"id"`
	Spans   []SpanDump `json:"spans"`
	Dropped int        `json:"dropped,omitempty"`
}

// SpanDump is one span in a TraceDump.
type SpanDump struct {
	Name    string `json:"name"`
	Parent  int    `json:"parent"` // index into Spans; -1 = root
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// AttachRemote records a remote tier's span tree to be grafted under the
// local span at index at when the trace is dumped — how a middle tier
// (e.g. the cluster router forwarding to shards) splices each shard's
// trailer dump into the tree it returns on its own trailer. at indexes
// the local trace's own spans (Span.Index of the round-trip span the
// remote call ran under). Nil-safe.
func (t *Trace) AttachRemote(at int, remote TraceDump) {
	if t == nil || len(remote.Spans) == 0 {
		return
	}
	t.mu.Lock()
	t.grafts = append(t.grafts, graftData{at: at, remote: remote})
	t.mu.Unlock()
}

// Dump snapshots the span tree, with every AttachRemote tree grafted in.
// Spans still open are reported with their duration so far. Nil-safe: a
// nil trace dumps empty.
func (t *Trace) Dump() TraceDump {
	if t == nil {
		return TraceDump{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := TraceDump{ID: t.id, Dropped: t.dropped, Spans: make([]SpanDump, len(t.spans))}
	for i, sp := range t.spans {
		dur := sp.dur
		if sp.open {
			dur = time.Since(t.start) - sp.start
		}
		d.Spans[i] = SpanDump{
			Name:    sp.name,
			Parent:  sp.parent,
			StartUS: sp.start.Microseconds(),
			DurUS:   dur.Microseconds(),
		}
	}
	// Grafts splice remote spans after the local ones, so each recorded
	// at — an index into the local span list — stays valid across
	// successive grafts.
	for _, g := range t.grafts {
		d = Graft(d, g.at, g.remote)
	}
	return d
}

// Duration returns the end-to-end duration of the dump: the latest span
// end across all spans (roots included), as a time.Duration.
func (d TraceDump) Duration() time.Duration {
	var maxUS int64
	for _, sp := range d.Spans {
		if end := sp.StartUS + sp.DurUS; end > maxUS {
			maxUS = end
		}
	}
	return time.Duration(maxUS) * time.Microsecond
}

// SpanNames returns the distinct span names in first-seen order.
func (d TraceDump) SpanNames() []string {
	seen := make(map[string]bool, len(d.Spans))
	var names []string
	for _, sp := range d.Spans {
		if !seen[sp.Name] {
			seen[sp.Name] = true
			names = append(names, sp.Name)
		}
	}
	return names
}

// Graft appends remote's spans to local, re-parented under local span
// index at (remote roots become children of at) with offsets shifted so
// the remote tree sits inside the local parent's timeline. It is how the
// client merges the server's trailer dump under its own round-trip span
// to produce one contiguous tree. An at of -1 keeps remote roots as
// roots.
func Graft(local TraceDump, at int, remote TraceDump) TraceDump {
	if at >= len(local.Spans) {
		at = -1
	}
	base := len(local.Spans)
	var shift int64
	if at >= 0 {
		shift = local.Spans[at].StartUS
	}
	out := local
	out.Spans = append(out.Spans[:len(out.Spans):len(out.Spans)], make([]SpanDump, len(remote.Spans))...)
	for i, sp := range remote.Spans {
		if sp.Parent >= 0 && sp.Parent < len(remote.Spans) {
			sp.Parent += base
		} else {
			sp.Parent = at
		}
		sp.StartUS += shift
		out.Spans[base+i] = sp
	}
	out.Dropped += remote.Dropped
	return out
}

// FormatTraceHeader renders the request header value: "<id>" or
// "<id>;sample".
func FormatTraceHeader(id string, sample bool) string {
	if sample {
		return id + ";sample"
	}
	return id
}

// ParseTraceHeader splits a request header value into trace id and sample
// flag. Unknown attributes are ignored; a malformed or empty value yields
// ("", false).
func ParseTraceHeader(v string) (id string, sample bool) {
	parts := strings.Split(v, ";")
	id = sanitizeID(strings.TrimSpace(parts[0]))
	for _, p := range parts[1:] {
		if strings.TrimSpace(p) == "sample" {
			sample = true
		}
	}
	return id, sample
}

// EncodeDump renders d as the compact JSON carried by SpanHeader.
func EncodeDump(d TraceDump) string {
	b, err := json.Marshal(d)
	if err != nil {
		return ""
	}
	return string(b)
}

// DecodeDump parses a SpanHeader value. Malformed input returns ok=false
// rather than an error: a missing or truncated trailer only costs the
// caller its span tree, never the response.
func DecodeDump(s string) (TraceDump, bool) {
	var d TraceDump
	if s == "" || json.Unmarshal([]byte(s), &d) != nil {
		return TraceDump{}, false
	}
	return d, true
}

// sanitizeID keeps at most 32 characters of [0-9a-f-], rejecting anything
// else so a hostile header cannot smuggle bytes into logs or trailers.
func sanitizeID(id string) string {
	if len(id) > 32 {
		id = id[:32]
	}
	for _, r := range id {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'f', r == '-':
		default:
			return ""
		}
	}
	return id
}

// newID returns 16 hex characters of crypto randomness.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively fatal elsewhere; a constant
		// id keeps tracing functional for diagnostics.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
