package obs

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func boolPtr(b bool) *bool { return &b }

func TestTraceLogQuery(t *testing.T) {
	l := NewTraceLog(8)
	at := time.Unix(1754649600, 0)
	l.Add(TraceEntry{Op: "data.nearest", DurMS: 2, At: at})
	l.Add(TraceEntry{Op: "data.nearest", DurMS: 30, At: at, Error: "shard down"})
	l.Add(TraceEntry{Op: "models.recommend", DurMS: 12, At: at, Degraded: true})

	all, err := l.Query(TraceQuery{})
	if err != nil || len(all) != 3 {
		t.Fatalf("Query all = %d, %v", len(all), err)
	}
	if all[0].Op != "models.recommend" {
		t.Errorf("not newest-first: %+v", all[0])
	}

	byOp, _ := l.Query(TraceQuery{Op: "data.nearest"})
	if len(byOp) != 2 {
		t.Errorf("op filter = %d, want 2", len(byOp))
	}
	slow, _ := l.Query(TraceQuery{MinMS: 10})
	if len(slow) != 2 {
		t.Errorf("min_ms filter = %d, want 2", len(slow))
	}
	errored, _ := l.Query(TraceQuery{Error: boolPtr(true)})
	if len(errored) != 1 || errored[0].Error != "shard down" {
		t.Errorf("error filter = %+v", errored)
	}
	clean, _ := l.Query(TraceQuery{Error: boolPtr(false)})
	if len(clean) != 2 {
		t.Errorf("clean filter = %d, want 2", len(clean))
	}
	degraded, _ := l.Query(TraceQuery{Degraded: boolPtr(true)})
	if len(degraded) != 1 || degraded[0].Op != "models.recommend" {
		t.Errorf("degraded filter = %+v", degraded)
	}
}

func TestTraceLogEviction(t *testing.T) {
	l := NewTraceLog(3)
	for i := 0; i < 5; i++ {
		l.Add(TraceEntry{Op: fmt.Sprintf("op_%d", i)})
	}
	got, err := l.Query(TraceQuery{})
	if err != nil || len(got) != 3 {
		t.Fatalf("retained %d, %v", len(got), err)
	}
	if got[0].Op != "op_4" || got[2].Op != "op_2" {
		t.Errorf("eviction order wrong: %+v", got)
	}
	if l.Total() != 5 {
		t.Errorf("Total = %d, want 5", l.Total())
	}
}

func TestTraceLogDisabled(t *testing.T) {
	for _, l := range []*TraceLog{nil, NewTraceLog(0), NewTraceLog(-1)} {
		l.Add(TraceEntry{Op: "x"})
		if _, err := l.Query(TraceQuery{}); !errors.Is(err, ErrDisabled) {
			t.Errorf("disabled log Query err = %v, want ErrDisabled", err)
		}
		if l.Enabled() {
			t.Error("disabled log claims enabled")
		}
	}
}
