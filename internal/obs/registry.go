package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"fairdms/internal/hdrhist"
)

// Registry is a central metric table with Prometheus-text exposition.
// Metrics register once at construction time (duplicate or malformed
// names panic — a programmer error, caught by tests and the obsnames
// analyzer) and are then recorded from any goroutine without locks on the
// hot path: counters are single atomics, histograms are hdrhist, and
// func-backed metrics read whatever atomic state their owner already
// keeps, so migrating an existing hand-kept counter costs one closure.
type Registry struct {
	mu       sync.Mutex
	byName   map[string]*family
	families []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeSummary
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// family is one metric name: scalar (single unlabeled series) or a vec
// keyed by one label.
type family struct {
	name  string
	help  string
	typ   metricType
	label string // label key; "" = scalar

	mu     sync.Mutex
	order  []string
	series map[string]any // *Counter | *Gauge | func() int64 | func() float64 | *hdrhist.Histogram
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous metric (an atomic float64).
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// With returns the counter for a label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	c, _ := v.f.get(value, func() any { return &Counter{} }).(*Counter)
	return c
}

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ f *family }

// With returns the gauge for a label value, creating it on first use.
func (v *GaugeVec) With(value string) *Gauge {
	g, _ := v.f.get(value, func() any { return &Gauge{} }).(*Gauge)
	return g
}

// HistogramVec is a latency-summary family keyed by one label. Each
// series is an hdrhist.Histogram recording nanoseconds and exposed as a
// Prometheus summary in seconds.
type HistogramVec struct{ f *family }

// With returns the histogram for a label value, creating it on first use.
func (v *HistogramVec) With(value string) *hdrhist.Histogram {
	h, _ := v.f.get(value, func() any { return &hdrhist.Histogram{} }).(*hdrhist.Histogram)
	return h
}

func (f *family) get(value string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[value]; ok {
		return s
	}
	s := mk()
	f.series[value] = s
	f.order = append(f.order, value)
	return s
}

// register installs a family, panicking on malformed or duplicate names:
// metric registration happens once at server construction, so failing
// loudly there beats silently shadowing a metric in production.
func (r *Registry) register(name, help string, typ metricType, label string) *family {
	if !ValidName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want lowercase_snake)", name))
	}
	if label != "" && !ValidName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q (want lowercase_snake)", label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, typ: typ, label: label, series: make(map[string]any)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers and returns a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, "")
	c := &Counter{}
	f.series[""] = c
	f.order = []string{""}
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for counters already kept as atomics
// elsewhere (cache hits, shed totals, index probes).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	f := r.register(name, help, typeCounter, "")
	f.series[""] = fn
	f.order = []string{""}
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, typeGauge, "")
	f.series[""] = fn
	f.order = []string{""}
}

// Gauge registers and returns a settable scalar gauge — for values pushed
// by an evaluator (e.g. SLO burn rates) rather than read from owner state.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, "")
	g := &Gauge{}
	f.series[""] = g
	f.order = []string{""}
	return g
}

// GaugeVec registers a settable gauge family keyed by label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, typeGauge, label)}
}

// Histogram registers and returns a scalar latency histogram, exposed as
// a Prometheus summary in seconds.
func (r *Registry) Histogram(name, help string) *hdrhist.Histogram {
	f := r.register(name, help, typeSummary, "")
	h := &hdrhist.Histogram{}
	f.series[""] = h
	f.order = []string{""}
	return h
}

// CounterVec registers a counter family keyed by label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.register(name, help, typeCounter, label)}
}

// HistogramVec registers a latency-summary family keyed by label.
func (r *Registry) HistogramVec(name, help, label string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, typeSummary, label)}
}

// quantiles exposed for each summary series.
var quantiles = []float64{0.5, 0.95, 0.99, 0.999}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4), families sorted by name. It reads counters and
// histograms with atomic snapshots, so scraping never stalls recording.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		order := make([]string, len(f.order))
		copy(order, f.order)
		series := make(map[string]any, len(f.series))
		for k, v := range f.series {
			series[k] = v
		}
		f.mu.Unlock()
		if len(order) == 0 {
			continue
		}

		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, lv := range order {
			switch s := series[lv].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelPairs(f.label, lv, "", 0), s.Value())
			case func() int64:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelPairs(f.label, lv, "", 0), s())
			case func() float64:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelPairs(f.label, lv, "", 0), formatFloat(s()))
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelPairs(f.label, lv, "", 0), formatFloat(s.Value()))
			case *hdrhist.Histogram:
				snap := s.Snapshot()
				for _, q := range quantiles {
					fmt.Fprintf(&b, "%s%s %s\n", f.name, labelPairs(f.label, lv, "quantile", q),
						formatFloat(snap.Quantile(q).Seconds()))
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelPairs(f.label, lv, "", 0),
					formatFloat(float64(snap.SumNS)/1e9))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelPairs(f.label, lv, "", 0), snap.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelPairs renders the label set for one sample: the family label (if
// any) plus an optional quantile label.
func labelPairs(key, value, extra string, q float64) string {
	var parts []string
	if key != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", key, escapeLabel(value)))
	}
	if extra != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", extra, strconv.FormatFloat(q, 'g', -1, 64)))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ValidName reports whether s is a legal metric/span/label name:
// lowercase_snake ASCII matching [a-z][a-z0-9_]*.
func ValidName(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

// ValidateExposition parses Prometheus text exposition and checks it is
// well formed: every sample belongs to a declared # TYPE family (allowing
// the _sum/_count suffixes and quantile label of summaries), names are
// lowercase_snake, values parse as floats, and no family is declared
// twice. It returns sample counts per family. Shared by the metricsz
// contract tests.
func ValidateExposition(data []byte) (map[string]int, error) {
	families := make(map[string]string) // name → type
	counts := make(map[string]int)
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", ln+1, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", ln+1, line)
				}
				name, typ := fields[2], fields[3]
				if _, dup := families[name]; dup {
					return nil, fmt.Errorf("line %d: family %q declared twice", ln+1, name)
				}
				if typ != "counter" && typ != "gauge" && typ != "summary" {
					return nil, fmt.Errorf("line %d: unknown type %q", ln+1, typ)
				}
				if !ValidName(name) {
					return nil, fmt.Errorf("line %d: metric name %q not lowercase_snake", ln+1, name)
				}
				families[name] = typ
			}
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		fam := name
		if _, ok := families[fam]; !ok {
			for _, suffix := range []string{"_sum", "_count"} {
				if base, found := strings.CutSuffix(name, suffix); found {
					if families[base] == "summary" {
						fam = base
						break
					}
				}
			}
		}
		typ, ok := families[fam]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q has no # TYPE declaration", ln+1, name)
		}
		_ = typ
		val := line[strings.LastIndex(line, " ")+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return nil, fmt.Errorf("line %d: bad sample value %q: %v", ln+1, val, err)
		}
		counts[fam]++
	}
	return counts, nil
}
