// Package hdrhist provides a fixed-memory, lock-free latency histogram in
// the spirit of HDR histograms: values are spread over log-linear buckets
// (each power-of-two range split into 32 linear sub-buckets, ~3% relative
// error), every bucket is an atomic counter, and both the record path and
// the snapshot path run without taking a lock. One histogram instance is
// shared by all request goroutines of an endpoint (dmsapi /statsz) and by
// all workers of a load-generator op (internal/loadgen), so both the write
// path and the read path must never serialize traffic.
//
// A Snapshot is a near-point-in-time view: buckets are read with atomic
// loads while recordings continue, so a snapshot taken mid-burst may be a
// few counts behind the total — but it is always internally sane (never
// torn values, quantiles always within the recorded range), which the
// regression test pins under -race.
package hdrhist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBucketBits fixes the linear resolution inside each power-of-two
	// range: 1<<subBucketBits sub-buckets, bounding relative error at
	// ~1/2^subBucketBits.
	subBucketBits = 5
	subBuckets    = 1 << subBucketBits // 32

	// maxExp covers the full non-negative int64 range (values are
	// nanoseconds; 2^62 ns ≈ 146 years).
	maxExp     = 63 - subBucketBits
	numBuckets = subBuckets + maxExp*subBuckets
)

// Histogram is a concurrency-safe latency histogram. The zero value is
// ready to use. It must not be copied after first use.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketIndex maps a non-negative nanosecond value to its bucket: values
// below subBuckets map directly; larger ones to (exponent, mantissa) with
// subBucketBits of mantissa resolution.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - 1 - subBucketBits // ≥ 0 for u ≥ subBuckets
	mantissa := int(u>>uint(exp)) - subBuckets
	return subBuckets + exp*subBuckets + mantissa
}

// bucketLow returns the smallest value mapping to bucket b (the inverse of
// bucketIndex on bucket lower bounds).
func bucketLow(b int) int64 {
	if b < subBuckets {
		return int64(b)
	}
	exp := (b - subBuckets) / subBuckets
	mantissa := (b - subBuckets) % subBuckets
	return int64(subBuckets+mantissa) << uint(exp)
}

// bucketMid returns a representative value for bucket b (midpoint of its
// range), used when reporting quantiles.
func bucketMid(b int) int64 {
	lo := bucketLow(b)
	if b < subBuckets {
		return lo
	}
	exp := (b - subBuckets) / subBuckets
	return lo + (int64(1)<<uint(exp))/2
}

// Record adds one observation. Negative durations are clamped to zero.
// Safe for concurrent use; never blocks.
func (h *Histogram) Record(d time.Duration) { h.RecordN(d, 1) }

// RecordN adds n identical observations in one shot — the bulk path used
// when reconstructing a histogram from summarized data (e.g. merging
// per-shard quantile summaries into a fleet-wide histogram, where each
// reported quantile stands in for a known share of that shard's count).
// Bucket increments commute, so merging is order-independent. Non-positive
// n is a no-op.
func (h *Histogram) RecordN(d time.Duration, n int64) {
	if n <= 0 {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(n)
	h.sumNS.Add(ns * n)
	h.buckets[bucketIndex(ns)].Add(n)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot captures the histogram state with atomic loads only — the read
// path takes no lock and stalls no recorder.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Count: h.count.Load(),
		SumNS: h.sumNS.Load(),
		MaxNS: h.maxNS.Load(),
	}
	// Recordings racing this loop may land in buckets already read; the
	// bucket total can therefore trail Count slightly. Quantile() scales to
	// the bucket total, so quantiles stay internally consistent.
	var total int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		total += n
		s.nonzero = append(s.nonzero, bucketCount{bucket: i, n: n})
	}
	s.bucketTotal = total
	return s
}

// bucketCount pairs a bucket index with its occupancy.
type bucketCount struct {
	bucket int
	n      int64
}

// Snapshot is an immutable view of a Histogram.
type Snapshot struct {
	Count int64 // observations recorded
	SumNS int64 // total of all observations, ns
	MaxNS int64 // largest observation, ns

	nonzero     []bucketCount // occupied buckets, ascending
	bucketTotal int64
}

// Mean returns the average observation (0 when empty).
func (s Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// Max returns the largest observation.
func (s Snapshot) Max() time.Duration { return time.Duration(s.MaxNS) }

// Quantile returns the value at quantile q in [0, 1] (e.g. 0.99 for p99),
// accurate to the bucket resolution (~3%). Returns 0 when empty.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.bucketTotal == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.bucketTotal))
	if rank >= s.bucketTotal {
		rank = s.bucketTotal - 1
	}
	var seen int64
	for _, bc := range s.nonzero {
		seen += bc.n
		if seen > rank {
			mid := bucketMid(bc.bucket)
			// Never report beyond the observed maximum: the top bucket's
			// midpoint can overshoot a single large sample.
			if s.MaxNS > 0 && mid > s.MaxNS {
				return time.Duration(s.MaxNS)
			}
			return time.Duration(mid)
		}
	}
	return time.Duration(s.MaxNS)
}
