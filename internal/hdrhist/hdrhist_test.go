package hdrhist

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexRoundTrip(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, and indices
	// must be monotone in the value.
	for b := 0; b < numBuckets; b++ {
		lo := bucketLow(b)
		if got := bucketIndex(lo); got != b {
			t.Fatalf("bucketIndex(bucketLow(%d)=%d) = %d", b, lo, got)
		}
	}
	prev := -1
	for _, v := range []int64{0, 1, 5, 31, 32, 33, 63, 64, 100, 1000, 1e6, 1e9, 1e12} {
		b := bucketIndex(v)
		if b < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
	}
}

func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	// Uniform 1..1000 µs: p50 ≈ 500µs, p99 ≈ 990µs, within bucket error.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	}
	for _, c := range checks {
		got := s.Quantile(c.q)
		lo := time.Duration(float64(c.want) * 0.90)
		hi := time.Duration(float64(c.want) * 1.10)
		if got < lo || got > hi {
			t.Errorf("p%g = %v, want within 10%% of %v", c.q*100, got, c.want)
		}
	}
	if s.Max() != time.Millisecond {
		t.Errorf("max = %v, want 1ms", s.Max())
	}
	if mean := s.Mean(); mean < 450*time.Microsecond || mean > 550*time.Microsecond {
		t.Errorf("mean = %v, want ≈ 500µs", mean)
	}
}

func TestEmptyAndSingleValue(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.99) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatalf("empty snapshot not all-zero: %+v", s)
	}
	h.Record(42 * time.Millisecond)
	s = h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		if got > 42*time.Millisecond || got < 40*time.Millisecond {
			t.Errorf("single-value p%g = %v, want ≈ 42ms (≤ max)", q*100, got)
		}
	}
	h.Record(-time.Second) // clamped, must not panic or corrupt
	if s := h.Snapshot(); s.Count != 2 {
		t.Errorf("count after clamp = %d, want 2", s.Count)
	}
}

// TestSnapshotDuringRecording is the /statsz regression test: snapshotting
// must not race with in-flight recording (run under -race), and every
// snapshot must be internally sane — count never decreasing, quantiles
// within the recorded value range.
func TestSnapshotDuringRecording(t *testing.T) {
	var h Histogram
	const writers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Record(time.Duration(1+rng.Intn(1_000_000)) * time.Microsecond)
			}
		}(w)
	}
	var prevCount int64
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		if s.Count < prevCount {
			t.Fatalf("snapshot %d: count went backwards: %d < %d", i, s.Count, prevCount)
		}
		prevCount = s.Count
		if s.Count == 0 {
			continue
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			v := s.Quantile(q)
			if v < 0 || v > time.Duration(s.MaxNS) {
				t.Fatalf("snapshot %d: p%g = %v outside [0, %v]", i, q*100, v, s.Max())
			}
		}
	}
	close(stop)
	wg.Wait()
	final := h.Snapshot()
	if final.bucketTotal != final.Count {
		t.Fatalf("quiescent snapshot: bucket total %d != count %d", final.bucketTotal, final.Count)
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		d := 137 * time.Microsecond
		for pb.Next() {
			h.Record(d)
		}
	})
}

func BenchmarkSnapshot(b *testing.B) {
	var h Histogram
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		_ = s.Quantile(0.99)
	}
}

// TestRecordN pins the bulk-record path: n identical observations behave
// exactly like n Record calls, and bulk merges commute across order.
func TestRecordN(t *testing.T) {
	var bulk, loop Histogram
	bulk.RecordN(3*time.Millisecond, 100)
	bulk.RecordN(9*time.Millisecond, 50)
	for i := 0; i < 100; i++ {
		loop.Record(3 * time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		loop.Record(9 * time.Millisecond)
	}
	bs, ls := bulk.Snapshot(), loop.Snapshot()
	if bs.Count != ls.Count || bs.SumNS != ls.SumNS || bs.MaxNS != ls.MaxNS {
		t.Errorf("bulk (%d,%d,%d) != loop (%d,%d,%d)",
			bs.Count, bs.SumNS, bs.MaxNS, ls.Count, ls.SumNS, ls.MaxNS)
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if bs.Quantile(q) != ls.Quantile(q) {
			t.Errorf("q%v: bulk %v != loop %v", q, bs.Quantile(q), ls.Quantile(q))
		}
	}

	// Merge order must not matter: recording the same weighted sets in
	// reverse yields identical snapshots.
	var fwd, rev Histogram
	sets := []struct {
		d time.Duration
		n int64
	}{{time.Millisecond, 500}, {40 * time.Millisecond, 9}, {2 * time.Second, 1}}
	for _, s := range sets {
		fwd.RecordN(s.d, s.n)
	}
	for i := len(sets) - 1; i >= 0; i-- {
		rev.RecordN(sets[i].d, sets[i].n)
	}
	fs, rs := fwd.Snapshot(), rev.Snapshot()
	if fs.Quantile(0.5) != rs.Quantile(0.5) || fs.Quantile(0.999) != rs.Quantile(0.999) || fs.Count != rs.Count {
		t.Error("RecordN merge is order-dependent")
	}

	// Non-positive n is a no-op.
	var empty Histogram
	empty.RecordN(time.Second, 0)
	empty.RecordN(time.Second, -5)
	if empty.Snapshot().Count != 0 {
		t.Error("non-positive n recorded something")
	}
}
