// Command storagebench runs the Figs. 6–8 storage comparison as a
// standalone program: reading training batches through the PyTorch-style
// dataloader from a remote document store (Blosc and Pickle codecs) vs.
// raw files ("NFS"), sweeping batch size and worker count for all three
// paper datasets.
//
// Run with: go run ./examples/storagebench [-samples N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fairdms/internal/experiments"
)

func main() {
	samples := flag.Int("samples", 128, "samples per dataset")
	flag.Parse()

	scratch, err := os.MkdirTemp("", "fairdms-storagebench-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(scratch)

	for _, kind := range []experiments.StorageKind{
		experiments.StorageTomography, // Fig. 6
		experiments.StorageCookieBox,  // Fig. 7
		experiments.StorageBragg,      // Fig. 8
	} {
		res, err := experiments.StorageSweep(experiments.StorageConfig{
			Kind:    kind,
			Samples: *samples,
			Dir:     filepath.Join(scratch, string(kind)),
			Seed:    1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Table())
		fmt.Println()
	}
}
