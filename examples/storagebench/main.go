// Command storagebench runs the Figs. 6–8 storage comparison as a
// standalone program: reading training batches through the PyTorch-style
// dataloader from a remote document store (Blosc and Pickle codecs) vs.
// raw files ("NFS"), sweeping batch size and worker count for all three
// paper datasets.
//
// Run with: go run ./examples/storagebench [-samples N] [-pool N]
//
// -pool caps the docstore client's connection pool; the cap is hard, so
// loader workers beyond it queue on the pool semaphore rather than
// opening extra TCP connections — sweeping it reproduces the paper's
// client-count sensitivity.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fairdms/internal/experiments"
)

func main() {
	samples := flag.Int("samples", 128, "samples per dataset")
	pool := flag.Int("pool", 0, "docstore client connection-pool cap (0 = max workers + 2)")
	flag.Parse()

	scratch, err := os.MkdirTemp("", "fairdms-storagebench-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(scratch)

	for _, kind := range []experiments.StorageKind{
		experiments.StorageTomography, // Fig. 6
		experiments.StorageCookieBox,  // Fig. 7
		experiments.StorageBragg,      // Fig. 8
	} {
		res, err := experiments.StorageSweep(experiments.StorageConfig{
			Kind:     kind,
			Samples:  *samples,
			PoolSize: *pool,
			Dir:      filepath.Join(scratch, string(kind)),
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Table())
		fmt.Println()
	}
}
