// Command tomography exercises the third paper application: low-dose
// tomography denoising (the TomoGAN role). It trains a DenoiseNet on
// normal-dose data, then shows the fairDMS fine-tuning effect on a new,
// lower-dose condition: starting from the trained checkpoint reaches the
// same quality in far fewer epochs than training from scratch — model
// reuse across experimental conditions, the heart of fairMS.
//
// Run with: go run ./examples/tomography
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"fairdms/internal/datagen"
	"fairdms/internal/models"
	"fairdms/internal/nn"
	"fairdms/internal/tensor"
)

const (
	size     = 16
	trainN   = 60
	valN     = 16
	doseHigh = 900
	doseLow  = 250
)

func main() {
	rng := rand.New(rand.NewSource(71))

	fmt.Printf("— training DenoiseNet on dose=%d slices\n", doseHigh)
	base := models.NewDenoiseNet(rng, size)
	hx, hy := pairs(rng, datagen.TomoRegime{Size: size, Ellipses: 4, Dose: doseHigh}, trainN)
	hvx, hvy := pairs(rng, datagen.TomoRegime{Size: size, Ellipses: 4, Dose: doseHigh}, valN)
	nx, nvx := base.NormalizeInputs(hx), base.NormalizeInputs(hvx)
	fmt.Printf("  PSNR before: %.2f dB (noisy input: %.2f dB)\n", base.PSNR(nvx, hvy), inputPSNR(nvx, hvy))
	opt := nn.NewAdam(base.Net.Params(), 2e-3)
	nn.Fit(base.Net, opt, nx, hy, nvx, hvy, nn.TrainConfig{Epochs: 30, BatchSize: 8, Seed: 72})
	fmt.Printf("  PSNR after:  %.2f dB\n", base.PSNR(nvx, hvy))

	// New condition: much lower dose (noisier data).
	fmt.Printf("\n— new experimental condition: dose=%d\n", doseLow)
	lx, ly := pairs(rng, datagen.TomoRegime{Size: size, Ellipses: 4, Dose: doseLow}, trainN)
	lvx, lvy := pairs(rng, datagen.TomoRegime{Size: size, Ellipses: 4, Dose: doseLow}, valN)

	run := func(name string, warmStart bool, lr float64) {
		m := models.NewDenoiseNet(rng, size)
		if warmStart {
			if err := m.Net.LoadState(base.Net.State()); err != nil {
				log.Fatal(err)
			}
		}
		nlx, nlvx := m.NormalizeInputs(lx), m.NormalizeInputs(lvx)
		target := 0.006 // reachable validation MSE at this dose
		o := nn.NewAdam(m.Net.Params(), lr)
		res := nn.Fit(m.Net, o, nlx, ly, nlvx, lvy,
			nn.TrainConfig{Epochs: 40, BatchSize: 8, TargetLoss: target, Seed: 73})
		status := fmt.Sprintf("converged in %d epochs", res.Epochs)
		if !res.Converged {
			status = fmt.Sprintf("not converged after %d epochs (val %.4f)", res.Epochs, res.ValLoss[len(res.ValLoss)-1])
		}
		fmt.Printf("  %-22s PSNR %.2f dB, %s\n", name, m.PSNR(nlvx, lvy), status)
	}
	run("fine-tune (fairMS path)", true, 5e-4)
	run("train from scratch", false, 2e-3)
}

// pairs builds (noisy, clean) tensors for n slices.
func pairs(rng *rand.Rand, r datagen.TomoRegime, n int) (*tensor.Tensor, *tensor.Tensor) {
	x := tensor.New(n, r.Size*r.Size)
	y := tensor.New(n, r.Size*r.Size)
	for i := 0; i < n; i++ {
		noisy, clean := r.GeneratePair(rng)
		copy(x.Row(i), noisy.Floats())
		copy(y.Row(i), clean)
	}
	return x, y
}

// inputPSNR scores the raw noisy input against the clean target.
func inputPSNR(x, clean *tensor.Tensor) float64 {
	total := 0.0
	for i := 0; i < x.Dim(0); i++ {
		mse := 0.0
		xr, cr := x.Row(i), clean.Row(i)
		for j := range xr {
			diff := xr[j] - cr[j]
			mse += diff * diff
		}
		mse /= float64(len(xr))
		if mse < 1e-12 {
			mse = 1e-12
		}
		total += 10 * math.Log10(1/mse)
	}
	return total / float64(x.Dim(0))
}
