// Command quickstart walks the fairDMS happy path end to end on a small
// synthetic Bragg-peak workload:
//
//  1. generate labeled "historical" data from two experiment regimes,
//  2. train a self-supervised embedder (system plane),
//  3. fit the clustering module and ingest history into the data store,
//  4. take a new unlabeled dataset, compute its cluster PDF, and retrieve
//     PDF-matched labeled data (pseudo-labeling),
//  5. rank the model zoo by Jensen–Shannon divergence and fine-tune the
//     recommendation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/core"
	"fairdms/internal/datagen"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
	"fairdms/internal/models"
	"fairdms/internal/nn"
	"fairdms/internal/tensor"
)

const patch = 9

func main() {
	start := time.Now()
	rng := rand.New(rand.NewSource(7))

	// 1. Historical data: two drifting regimes of an HEDM experiment.
	fmt.Println("— generating historical data (2 regimes × 150 peaks)")
	early := datagen.DefaultBraggRegime()
	early.Patch = patch
	late := early
	late.WidthMean += 1.0
	late.EtaMean = 0.8
	histA := early.Generate(rng, 150)
	histB := late.Generate(rng, 150)
	all := append(append([]*codec.Sample(nil), histA...), histB...)

	// 2. Self-supervised embedder (BYOL with rotation/flip augmentations).
	fmt.Println("— training BYOL embedder on history (system plane)")
	x, err := fairds.Collate(all)
	check(err)
	aug := embed.ImageAugmenter{H: patch, W: patch, Noise: 0.1, ScaleRange: 0.1}
	byol := embed.NewBYOL(rng, x.Dim(1), 64, 8, aug.View, 0.95)
	losses := byol.Train(x, embed.TrainConfig{Epochs: 15, BatchSize: 32, LR: 2e-3, Seed: 8})
	fmt.Printf("  byol loss %.4f → %.4f\n", losses[0], losses[len(losses)-1])

	// 3. Data service: clustering (automatic K by elbow) + ingestion.
	store := docstore.NewStore().Collection("peaks")
	ds, err := fairds.New(byol, store, fairds.Config{Seed: 9})
	check(err)
	check(ds.FitClusters(x))
	fmt.Printf("— elbow method selected K=%d clusters (WSS curve: %d points)\n", ds.K(), len(ds.WSSCurve()))
	_, err = ds.IngestLabeled(all, "history")
	check(err)
	fmt.Printf("— ingested %d labeled samples into the data store\n", ds.StoreCount())

	// Zoo: one BraggNN per regime.
	zoo := fairms.NewZoo()
	for i, hist := range [][]*codec.Sample{histA, histB} {
		m := models.NewBraggNN(rng, patch)
		hx, hy := tensors(hist)
		opt := nn.NewAdam(m.Net.Params(), 2e-3)
		nn.Fit(m.Net, opt, hx, m.Targets(hy), hx, m.Targets(hy),
			nn.TrainConfig{Epochs: 30, BatchSize: 16, Seed: int64(10 + i)})
		pdf, err := ds.DatasetPDF(hx)
		check(err)
		check(zoo.Add(fmt.Sprintf("braggnn-regime%d", i), m.Net.State(), pdf, nil))
	}
	fmt.Printf("— model zoo holds %d checkpoints indexed by training PDF\n", zoo.Len())

	// 4+5. User plane: new unlabeled data from (a slightly drifted) regime B.
	newRegime := late
	newRegime.WidthMean += 0.1
	input := newRegime.Generate(rng, 80)
	sys, err := core.New(ds, zoo, core.Config{Seed: 11})
	check(err)
	model, rep, err := sys.RapidTrain(core.Request{
		Input: input,
		NewModel: func() *nn.Model {
			return models.NewBraggNN(rng, patch).Net
		},
		Prep: func(samples []*codec.Sample) (*tensor.Tensor, *tensor.Tensor, error) {
			sx, sy := tensors(samples)
			helper := &models.BraggNN{Patch: patch}
			return sx, helper.Targets(sy), nil
		},
		Train:   nn.TrainConfig{Epochs: 25, BatchSize: 16, Seed: 12},
		ModelID: "braggnn-updated",
	})
	check(err)

	fmt.Println("— rapid training report:")
	fmt.Printf("  clustering certainty  %.1f%%\n", 100*rep.Certainty)
	fmt.Printf("  labeled data reused   %d samples in %v\n", rep.Labeled, rep.LabelTime.Round(time.Millisecond))
	if rep.FineTuned {
		fmt.Printf("  foundation model      %s (JSD %.4f)\n", rep.Foundation, rep.JSD)
	} else {
		fmt.Println("  foundation model      none (trained from scratch)")
	}
	fmt.Printf("  training              %d epochs in %v\n", rep.Result.Epochs, rep.TrainTime.Round(time.Millisecond))

	// Check the updated model on the new data (we know the true labels).
	ix, iy := tensors(input)
	final := &models.BraggNN{Net: model, Patch: patch}
	fmt.Printf("— updated model error on new data: %.3f px (total %v)\n",
		final.MeanErrorPx(ix, iy), time.Since(start).Round(time.Millisecond))
}

func tensors(samples []*codec.Sample) (*tensor.Tensor, *tensor.Tensor) {
	x, err := fairds.Collate(samples)
	check(err)
	y := tensor.New(len(samples), 2)
	for i, s := range samples {
		y.Set(s.Label[0], i, 0)
		y.Set(s.Label[1], i, 1)
	}
	return x, y
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
