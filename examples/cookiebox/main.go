// Command cookiebox reproduces the CookieNetAE side of the evaluation
// (Figs. 11 and 13) as a runnable scenario: a drifting CookieBox detector
// simulation feeds a zoo of models; for a new run, fairMS ranks the zoo by
// JSD and the example compares fine-tuning the Best/Median/Worst
// recommendation against retraining from scratch.
//
// Run with: go run ./examples/cookiebox
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fairdms/internal/codec"
	"fairdms/internal/datagen"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
	"fairdms/internal/models"
	"fairdms/internal/nn"
	"fairdms/internal/tensor"
)

const (
	size     = 16
	numRuns  = 6
	perRun   = 48
	zooRuns  = 5
	ftEpochs = 18
)

func main() {
	rng := rand.New(rand.NewSource(31))
	drift := datagen.DefaultCookieDrift()
	drift.Base.Size = size
	runs := drift.CookieExperiment(32, numRuns, perRun)

	// Embedder: a denoising-style autoencoder works well for CookieBox
	// (the paper's successful pre-BYOL choice).
	var early []*codec.Sample
	for i := 0; i < 3; i++ {
		early = append(early, runs[i]...)
	}
	ex, err := fairds.Collate(early)
	check(err)
	ae := embed.NewAutoencoder(rng, ex.Dim(1), 64, 8)
	ae.Train(ex, embed.TrainConfig{Epochs: 20, BatchSize: 32, LR: 1e-3, Seed: 33})

	ds, err := fairds.New(ae, docstore.NewStore().Collection("cookiebox"), fairds.Config{Seed: 34})
	check(err)
	check(ds.FitClustersK(ex, 6))

	// Zoo: one CookieNetAE per historical run.
	zoo := fairms.NewZoo()
	for i := 0; i < zooRuns; i++ {
		m := models.NewCookieNetAE(rng, size)
		x, y := tensors(runs[i])
		sx := models.ScaleInputs(x)
		opt := nn.NewAdam(m.Net.Params(), 1e-3)
		nn.Fit(m.Net, opt, sx, m.Targets(y), sx, m.Targets(y),
			nn.TrainConfig{Epochs: 25, BatchSize: 16, Seed: int64(40 + i)})
		pdf, err := ds.DatasetPDF(x)
		check(err)
		check(zoo.Add(fmt.Sprintf("cookienetae-run%d", i), m.Net.State(), pdf, nil))
		fmt.Printf("— zoo model %d trained (loss %.4f)\n", i, m.Loss(sx, y))
	}

	// New run: rank the zoo.
	newX, newY := tensors(runs[numRuns-1])
	pdf, err := ds.DatasetPDF(newX)
	check(err)
	ranked, err := zoo.Rank(pdf)
	check(err)
	fmt.Println("\n— zoo ranking for the new run (ascending JSD):")
	for _, r := range ranked {
		fmt.Printf("  %-20s JSD %.4f\n", r.Record.ID, r.JSD)
	}

	best, median, worst, err := zoo.BestMedianWorst(pdf)
	check(err)

	// Compare the four training strategies of Fig. 13.
	sx := models.ScaleInputs(newX)
	helper := models.NewCookieNetAE(rng, size)
	targets := helper.Targets(newY)
	fmt.Println("\n— validation loss per epoch (Fig. 13 style):")
	fmt.Println("strategy     first    last     epochs-to-halve-retrain-start")
	run := func(name string, state *nn.StateDict, lr float64) []float64 {
		m := models.NewCookieNetAE(rng, size)
		if state != nil {
			check(m.Net.LoadState(state))
		}
		opt := nn.NewAdam(m.Net.Params(), lr)
		res := nn.Fit(m.Net, opt, sx, targets, sx, targets,
			nn.TrainConfig{Epochs: ftEpochs, BatchSize: 16, Seed: 50})
		return res.ValLoss
	}
	retrain := run("Retrain", nil, 2e-3)
	target := retrain[0] / 2
	for _, s := range []struct {
		name  string
		state *nn.StateDict
		lr    float64
	}{
		{"Retrain", nil, 2e-3},
		{"FineTune-B", best.Record.State, 5e-4},
		{"FineTune-M", median.Record.State, 5e-4},
		{"FineTune-W", worst.Record.State, 5e-4},
	} {
		curve := run(s.name, s.state, s.lr)
		reach := -1
		for i, v := range curve {
			if v <= target {
				reach = i + 1
				break
			}
		}
		fmt.Printf("%-12s %.4f   %.4f   %d\n", s.name, curve[0], curve[len(curve)-1], reach)
	}
	fmt.Printf("\nbest model JSD %.4f vs worst %.4f — ranking drives the convergence gap\n",
		best.JSD, worst.JSD)
}

func tensors(samples []*codec.Sample) (*tensor.Tensor, *tensor.Tensor) {
	x, err := fairds.Collate(samples)
	check(err)
	y := tensor.New(len(samples), len(samples[0].Label))
	for i, s := range samples {
		copy(y.Row(i), s.Label)
	}
	return x, y
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
