// Command hedm simulates the paper's motivating scenario (Figs. 1–2 and
// §III-H): a long-running High-Energy X-ray Diffraction Microscopy
// experiment whose sample deforms mid-run. A BraggNN surrogate analyzes
// each scan; fairDMS monitors clustering certainty and MC-dropout
// uncertainty, and when the deformation degrades the model it performs a
// rapid update — reusing historical labels via fairDS and fine-tuning the
// JSD-recommended zoo model via fairMS — instead of the legacy
// label-everything-and-retrain-from-scratch loop.
//
// Run with: go run ./examples/hedm
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"fairdms/internal/codec"
	"fairdms/internal/core"
	"fairdms/internal/datagen"
	"fairdms/internal/docstore"
	"fairdms/internal/embed"
	"fairdms/internal/fairds"
	"fairdms/internal/fairms"
	"fairdms/internal/models"
	"fairdms/internal/nn"
	"fairdms/internal/tensor"
	"fairdms/internal/uq"
)

const (
	patch       = 9
	numScans    = 14
	peaksPer    = 80
	driftAt     = 8
	warmupScans = 3
)

func main() {
	rng := rand.New(rand.NewSource(21))
	schedule := datagen.DefaultBraggDrift(driftAt)
	schedule.Base.Patch = patch
	schedule.JumpWidth = 0.1 * patch
	scans := schedule.BraggExperiment(22, numScans, peaksPer)

	// System plane setup on the warmup scans.
	var warmup []*codec.Sample
	for i := 0; i < warmupScans; i++ {
		warmup = append(warmup, scans[i]...)
	}
	wx, err := fairds.Collate(warmup)
	check(err)
	aug := embed.ImageAugmenter{H: patch, W: patch, Noise: 0.1, ScaleRange: 0.1}
	byol := embed.NewBYOL(rng, wx.Dim(1), 64, 8, aug.View, 0.95)
	byol.Train(wx, embed.TrainConfig{Epochs: 15, BatchSize: 32, LR: 2e-3, Seed: 23})

	ds, err := fairds.New(byol, docstore.NewStore().Collection("hedm"), fairds.Config{Seed: 24})
	check(err)
	check(ds.FitClustersK(wx, 8))
	for i := 0; i < warmupScans; i++ {
		_, err := ds.IngestLabeled(scans[i], fmt.Sprintf("scan-%02d", i))
		check(err)
	}

	// Initial surrogate, trained on warmup data, registered in the zoo.
	surrogate := models.NewBraggNN(rng, patch)
	wy := labels(warmup)
	opt := nn.NewAdam(surrogate.Net.Params(), 2e-3)
	nn.Fit(surrogate.Net, opt, wx, surrogate.Targets(wy), wx, surrogate.Targets(wy),
		nn.TrainConfig{Epochs: 40, BatchSize: 16, Seed: 25})
	zoo := fairms.NewZoo()
	pdf, err := ds.DatasetPDF(wx)
	check(err)
	check(zoo.Add("braggnn-warmup", surrogate.Net.State(), pdf, nil))

	sys, err := core.New(ds, zoo, core.Config{Seed: 26, CertaintyTrigger: 0.8})
	check(err)

	detector := &uq.DriftDetector{Warmup: warmupScans, Threshold: 1.6}
	fmt.Println("scan  err(px)  mc-unc   certainty  action")
	fmt.Println("----  -------  -------  ---------  ------")
	updates := 0
	for i := warmupScans; i < numScans; i++ {
		x, y := tensors(scans[i])
		errPx := surrogate.MeanErrorPx(x, y)
		unc, err := uq.MeanUncertainty(surrogate.Net, x, 12)
		check(err)
		cert, _, err := sys.CheckDataset(scans[i])
		check(err)

		action := "ok"
		if detector.Observe(errPx) || cert < 0.8 {
			action = "RAPID UPDATE"
			updates++
			start := time.Now()
			model, rep, err := sys.RapidTrain(core.Request{
				Input: scans[i],
				NewModel: func() *nn.Model {
					return models.NewBraggNN(rng, patch).Net
				},
				Prep: func(samples []*codec.Sample) (*tensor.Tensor, *tensor.Tensor, error) {
					sx, _ := fairds.Collate(samples)
					helper := &models.BraggNN{Patch: patch}
					return sx, helper.Targets(labels(samples)), nil
				},
				Train:   nn.TrainConfig{Epochs: 30, BatchSize: 16, Seed: int64(30 + i)},
				ModelID: fmt.Sprintf("braggnn-scan%02d", i),
			})
			check(err)
			surrogate = &models.BraggNN{Net: model, Patch: patch}
			path := "fine-tuned " + rep.Foundation
			if !rep.FineTuned {
				path = "scratch"
			}
			action = fmt.Sprintf("RAPID UPDATE (%s, %v)", path, time.Since(start).Round(time.Millisecond))
		}
		fmt.Printf("%4d  %7.3f  %7.4f  %8.1f%%  %s\n", i, errPx, unc, 100*cert, action)

		// New scan data becomes historical once processed.
		_, err = ds.IngestLabeled(scans[i], fmt.Sprintf("scan-%02d", i))
		check(err)
	}
	fmt.Printf("\n%d rapid updates over %d scans; zoo now holds %d models\n",
		updates, numScans-warmupScans, zoo.Len())
	for _, e := range sys.Events() {
		fmt.Printf("  event %-9s %s\n", e.Kind, e.Info)
	}
}

func labels(samples []*codec.Sample) *tensor.Tensor {
	y := tensor.New(len(samples), 2)
	for i, s := range samples {
		y.Set(s.Label[0], i, 0)
		y.Set(s.Label[1], i, 1)
	}
	return y
}

func tensors(samples []*codec.Sample) (*tensor.Tensor, *tensor.Tensor) {
	x, err := fairds.Collate(samples)
	check(err)
	return x, labels(samples)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
