// Package fairdms's root benchmark suite regenerates every figure of the
// paper's evaluation section (§III) under the Go benchmark harness: one
// Benchmark per figure, each reporting the figure's headline metric via
// b.ReportMetric so `go test -bench=.` doubles as the reproduction run.
// See EXPERIMENTS.md for recorded paper-vs-measured comparisons.
package fairdms

import (
	"testing"

	"fairdms/internal/experiments"
)

func BenchmarkFig02_Degradation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig02(experiments.Fig02Config{
			NumDatasets: 10, PerDataset: 40, DriftAt: 6, TrainOn: 3,
			TrainEpochs: 25, MCSamples: 10, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ErrorRise(), "error-rise-x")
		b.ReportMetric(res.UncertaintyRise(), "uncertainty-rise-x")
	}
}

func benchStorage(b *testing.B, kind experiments.StorageKind) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.StorageSweep(experiments.StorageConfig{
			Kind: kind, Samples: 96,
			BatchSizes: []int{16, 64}, Workers: []int{1, 8},
			FixedWorkers: 4, FixedBatch: 16,
			Dir: b.TempDir(), Seed: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Headline: how much 8 workers improve remote-store I/O over 1.
		var pickle experiments.StorageSeries
		for _, s := range res.Series {
			if s.Backend == "pickle" {
				pickle = s
			}
		}
		if len(pickle.IOPerIter) == 2 && pickle.IOPerIter[1] > 0 {
			b.ReportMetric(float64(pickle.IOPerIter[0])/float64(pickle.IOPerIter[1]), "worker-speedup-x")
		}
	}
}

func BenchmarkFig06_TomoStorage(b *testing.B)   { benchStorage(b, experiments.StorageTomography) }
func BenchmarkFig07_CookieStorage(b *testing.B) { benchStorage(b, experiments.StorageCookieBox) }
func BenchmarkFig08_BraggStorage(b *testing.B)  { benchStorage(b, experiments.StorageBragg) }

func BenchmarkFig09_DataServiceValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig09(experiments.Fig09Config{
			Historical: 160, NewSamples: 60, TrainEpochs: 20, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup(), "label-speedup-x")
		b.ReportMetric(res.FairP50, "fairds-p50-px")
		b.ReportMetric(res.ConvP50, "conventional-p50-px")
	}
}

func BenchmarkFig10_BraggErrVsJSD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ErrVsJSD(experiments.ErrJSDConfig{
			App: experiments.AppBragg, ZooModels: 6, TestDatasets: 2, Seed: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanCorrelation(), "jsd-error-corr")
		b.ReportMetric(res.BestIsAccurate(), "best-in-top2-frac")
	}
}

func BenchmarkFig11_CookieErrVsJSD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ErrVsJSD(experiments.ErrJSDConfig{
			App: experiments.AppCookie, ZooModels: 5, TestDatasets: 2, PerDataset: 30, Seed: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanCorrelation(), "jsd-error-corr")
	}
}

func BenchmarkFig12_PDFComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(experiments.Fig12Config{
			ZooModels: 6, PerDataset: 50, Clusters: 15, Seed: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BestJSD, "best-jsd")
		b.ReportMetric(res.WorstJSD, "worst-jsd")
	}
}

func benchCurves(b *testing.B, app experiments.App, perDataset int) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.LearningCurves(experiments.CurvesConfig{
			App: app, ZooModels: 5, TestDatasets: 2, PerDataset: perDataset,
			Epochs: 15, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Headline: ratio of Retrain's to FineTune-B's first-epoch loss —
		// how far ahead the best recommendation starts.
		set := res.Sets[0]
		head := set.Curves[experiments.StrategyRetrain][0] /
			set.Curves[experiments.StrategyFineTuneB][0]
		b.ReportMetric(head, "finetuneB-headstart-x")
	}
}

func BenchmarkFig13_CookieLearningCurves(b *testing.B) {
	benchCurves(b, experiments.AppCookie, 30)
}

func BenchmarkFig14_BraggLearningCurves(b *testing.B) {
	benchCurves(b, experiments.AppBragg, 40)
}

func BenchmarkFig15_CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(experiments.Fig15Config{
			Historical: 200, NewSamples: 80, ScanPeaks: 500_000,
			FitSamples: 6, Epochs: 40, Seed: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup("Voigt-80"), "vs-voigt80-x")
		b.ReportMetric(res.Speedup("Voigt-1440"), "vs-voigt1440-x")
		b.ReportMetric(res.Speedup("Retrain"), "vs-retrain-x")
	}
}

func BenchmarkFig16_UncertaintyTrigger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig16(experiments.Fig16Config{
			NumDatasets: 18, PerDataset: 30, DriftAt: 10, Warmup: 4,
			Clusters: 8, Seed: 9,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MinBeforePostDrift(), "static-min-certainty")
		b.ReportMetric(res.After[len(res.After)-1], "refreshed-final-certainty")
	}
}

// BenchmarkAblation_EmbeddingMethod reproduces the §IV failure analysis:
// autoencoder vs BYOL rotation-retrieval quality.
func BenchmarkAblation_EmbeddingMethod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.EmbedAblation(experiments.EmbedAblationConfig{
			Samples: 60, Epochs: 20, Seed: 11,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AERetrieval, "ae-rot-retrieval")
		b.ReportMetric(res.BYOLRetrieval, "byol-rot-retrieval")
	}
}

// BenchmarkAblation_PDFMatchedRetrieval quantifies how much fairDS's
// PDF-matched sampling improves distribution fidelity over uniform
// sampling of the store.
func BenchmarkAblation_PDFMatchedRetrieval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RetrievalAblation(experiments.RetrievalAblationConfig{Seed: 12})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MatchedJSD, "matched-jsd")
		b.ReportMetric(res.UniformJSD, "uniform-jsd")
	}
}
