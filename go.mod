module fairdms

go 1.24
